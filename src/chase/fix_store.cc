#include "src/chase/fix_store.h"

#include <algorithm>

#include "src/common/strings.h"

namespace rock::chase {

int64_t UnionFind::Find(int64_t eid) const {
  // Pure walk, no path compression: Find must stay safe for concurrent
  // readers (see the thread contract in the header). Union keeps chains
  // one level deep by re-pointing the merged class's members eagerly, so
  // the walk is short anyway.
  int64_t root = eid;
  for (auto it = parent_.find(root); it != parent_.end();
       it = parent_.find(root)) {
    root = it->second;
  }
  return root;
}

int64_t UnionFind::Union(int64_t a, int64_t b) {
  int64_t ra = Find(a);
  int64_t rb = Find(b);
  if (ra == rb) return ra;
  // Smaller id becomes the canonical representative so the result is
  // independent of merge order.
  int64_t root = std::min(ra, rb);
  int64_t child = std::max(ra, rb);
  parent_[child] = root;
  // Eager compression (the mutating half of the thread contract): every
  // member of the absorbed class points directly at the new root.
  auto absorbed = members_.find(child);
  if (absorbed != members_.end()) {
    for (int64_t member : absorbed->second) parent_[member] = root;
  }
  auto& root_members = members_[root];
  if (root_members.empty()) root_members.push_back(root);
  auto child_it = members_.find(child);
  if (child_it != members_.end()) {
    root_members.insert(root_members.end(), child_it->second.begin(),
                        child_it->second.end());
    members_.erase(child_it);
  } else {
    root_members.push_back(child);
  }
  ++num_merges_;
  return root;
}

std::vector<int64_t> UnionFind::Members(int64_t eid) const {
  int64_t root = Find(eid);
  auto it = members_.find(root);
  if (it == members_.end()) return {root};
  return it->second;
}

bool TemporalOrderStore::Reaches(int64_t from, int64_t to,
                                 bool* via_strict) const {
  if (from == to) {
    *via_strict = false;
    return true;
  }
  // DFS tracking whether any strict edge appears on the path. A vertex may
  // need revisiting if first reached only via non-strict paths, so visited
  // states carry the strictness flag (2 states per vertex).
  std::set<std::pair<int64_t, bool>> visited;
  std::vector<std::pair<int64_t, bool>> stack = {{from, false}};
  bool reachable = false;
  bool strict_path = false;
  while (!stack.empty()) {
    auto [node, strict_so_far] = stack.back();
    stack.pop_back();
    if (!visited.insert({node, strict_so_far}).second) continue;
    auto it = out_.find(node);
    if (it == out_.end()) continue;
    for (const Edge& e : it->second) {
      bool next_strict = strict_so_far || e.strict;
      if (e.to == to) {
        reachable = true;
        if (next_strict) {
          *via_strict = true;
          return true;
        }
        strict_path = strict_path || next_strict;
        continue;
      }
      stack.push_back({e.to, next_strict});
    }
  }
  if (reachable) {
    *via_strict = false;
    return true;
  }
  return false;
}

Status TemporalOrderStore::Add(int64_t tid1, int64_t tid2, bool strict,
                               bool* added) {
  *added = false;
  if (tid1 == tid2) {
    if (strict) {
      return Status::Conflict("t ≺ t is unsatisfiable");
    }
    return Status::Ok();  // reflexive ⪯ is trivially true
  }
  bool via_strict = false;
  if (Reaches(tid1, tid2, &via_strict)) {
    // Already implied; a strict request is new information only if no
    // strict path exists yet.
    if (!strict || via_strict) return Status::Ok();
  }
  // Conflict check: does tid2 already reach tid1?
  bool back_strict = false;
  if (Reaches(tid2, tid1, &back_strict)) {
    if (strict || back_strict) {
      return Status::Conflict(
          "temporal cycle through a strict order: " + std::to_string(tid1) +
          " vs " + std::to_string(tid2));
    }
    // Non-strict cycle: both directions ⪯ — the values are equally
    // current; allowed.
  }
  out_[tid1].push_back({tid2, strict});
  ++num_pairs_;
  *added = true;
  return Status::Ok();
}

std::optional<bool> TemporalOrderStore::Holds(int64_t tid1, int64_t tid2,
                                              bool strict) const {
  if (tid1 == tid2) return !strict;
  bool via_strict = false;
  if (Reaches(tid1, tid2, &via_strict)) {
    if (!strict) return true;
    if (via_strict) return true;
    return std::nullopt;  // ⪯ known, ≺ unknown
  }
  bool back_strict = false;
  if (Reaches(tid2, tid1, &back_strict) && back_strict) {
    // tid2 ≺ tid1 implies not (tid1 ⪯ tid2).
    return false;
  }
  return std::nullopt;
}

namespace {

const char* FixKindName(FixRecord::Kind kind) {
  switch (kind) {
    case FixRecord::Kind::kMergeEid:
      return "merge_eid";
    case FixRecord::Kind::kSetValue:
      return "set_value";
    case FixRecord::Kind::kTemporalOrder:
      return "temporal_order";
  }
  return "?";
}

Result<FixRecord::Kind> FixKindFromName(const std::string& name) {
  if (name == "merge_eid") return FixRecord::Kind::kMergeEid;
  if (name == "set_value") return FixRecord::Kind::kSetValue;
  if (name == "temporal_order") return FixRecord::Kind::kTemporalOrder;
  return Status::InvalidArgument("unknown fix kind: " + name);
}

const char* ConflictKindName(ConflictRecord::Kind kind) {
  switch (kind) {
    case ConflictRecord::Kind::kValue:
      return "value";
    case ConflictRecord::Kind::kEid:
      return "eid";
    case ConflictRecord::Kind::kTemporal:
      return "temporal";
  }
  return "?";
}

Result<ConflictRecord::Kind> ConflictKindFromName(const std::string& name) {
  if (name == "value") return ConflictRecord::Kind::kValue;
  if (name == "eid") return ConflictRecord::Kind::kEid;
  if (name == "temporal") return ConflictRecord::Kind::kTemporal;
  return Status::InvalidArgument("unknown conflict kind: " + name);
}

/// Serializes `v` as {type, text} such that Value::Parse(text, type)
/// reconstructs it (ToString() alone does not round-trip: time values
/// render with an "@" prefix Parse does not accept).
void AppendValueJson(const Value& v, obs::JsonWriter* w) {
  w->BeginObject();
  w->Key("type").String(ValueTypeName(v.type()));
  std::string text;
  switch (v.type()) {
    case ValueType::kNull:
      break;
    case ValueType::kInt:
      text = std::to_string(v.AsInt());
      break;
    case ValueType::kDouble:
      text = v.ToString();
      break;
    case ValueType::kString:
      text = v.AsString();
      break;
    case ValueType::kTime:
      text = std::to_string(v.AsTime());
      break;
  }
  w->Key("text").String(text);
  w->EndObject();
}

Result<Value> ValueFromJson(const json::Value& v) {
  std::string type_name = v.GetString("type", "null");
  ValueType type;
  if (type_name == "null") {
    type = ValueType::kNull;
  } else if (type_name == "int") {
    type = ValueType::kInt;
  } else if (type_name == "double") {
    type = ValueType::kDouble;
  } else if (type_name == "string") {
    type = ValueType::kString;
  } else if (type_name == "time") {
    type = ValueType::kTime;
  } else {
    return Status::InvalidArgument("unknown value type: " + type_name);
  }
  // Strings bypass Value::Parse: it trims whitespace (its CSV contract),
  // but serialized strings must round-trip byte-exact.
  if (type == ValueType::kString) return Value::String(v.GetString("text"));
  return Value::Parse(v.GetString("text"), type);
}

}  // namespace

std::string FixRecord::ToJson() const {
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("kind").String(FixKindName(kind));
  w.Key("rule_id").String(rule_id);
  w.Key("prov_id").Int(prov_id);
  switch (kind) {
    case Kind::kMergeEid:
      w.Key("eid_a").Int(eid_a);
      w.Key("eid_b").Int(eid_b);
      break;
    case Kind::kSetValue:
      w.Key("rel").Int(rel);
      w.Key("attr").Int(attr);
      w.Key("eid").Int(eid);
      w.Key("tid").Int(tid1);
      w.Key("value");
      AppendValueJson(value, &w);
      break;
    case Kind::kTemporalOrder:
      w.Key("rel").Int(rel);
      w.Key("attr").Int(attr);
      w.Key("tid1").Int(tid1);
      w.Key("tid2").Int(tid2);
      w.Key("strict").Bool(strict);
      break;
  }
  w.EndObject();
  return w.str();
}

Result<FixRecord> FixRecord::FromJson(const json::Value& v) {
  FixRecord out;
  auto kind = FixKindFromName(v.GetString("kind"));
  ROCK_RETURN_IF_ERROR(kind.status());
  out.kind = *kind;
  out.rule_id = v.GetString("rule_id");
  out.prov_id = v.GetInt("prov_id", -1);
  switch (out.kind) {
    case Kind::kMergeEid:
      out.eid_a = v.GetInt("eid_a", -1);
      out.eid_b = v.GetInt("eid_b", -1);
      break;
    case Kind::kSetValue: {
      out.rel = static_cast<int>(v.GetInt("rel", -1));
      out.attr = static_cast<int>(v.GetInt("attr", -1));
      out.eid = v.GetInt("eid", -1);
      out.tid1 = v.GetInt("tid", -1);
      const json::Value* value = v.Find("value");
      if (value == nullptr) {
        return Status::InvalidArgument("set_value record without value");
      }
      auto parsed = ValueFromJson(*value);
      ROCK_RETURN_IF_ERROR(parsed.status());
      out.value = *parsed;
      break;
    }
    case Kind::kTemporalOrder:
      out.rel = static_cast<int>(v.GetInt("rel", -1));
      out.attr = static_cast<int>(v.GetInt("attr", -1));
      out.tid1 = v.GetInt("tid1", -1);
      out.tid2 = v.GetInt("tid2", -1);
      out.strict = v.GetBool("strict", false);
      break;
  }
  return out;
}

std::string ConflictRecord::ToJson() const {
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("kind").String(ConflictKindName(kind));
  w.Key("rule_id").String(rule_id);
  w.Key("description").String(description);
  w.Key("resolution").String(resolution);
  w.Key("prov_existing").Int(prov_existing);
  w.Key("prov_candidate").Int(prov_candidate);
  w.EndObject();
  return w.str();
}

Result<ConflictRecord> ConflictRecord::FromJson(const json::Value& v) {
  ConflictRecord out;
  auto kind = ConflictKindFromName(v.GetString("kind"));
  ROCK_RETURN_IF_ERROR(kind.status());
  out.kind = *kind;
  out.rule_id = v.GetString("rule_id");
  out.description = v.GetString("description");
  out.resolution = v.GetString("resolution");
  out.prov_existing = v.GetInt("prov_existing", -1);
  out.prov_candidate = v.GetInt("prov_candidate", -1);
  return out;
}

std::string FixRecord::ToString() const {
  switch (kind) {
    case Kind::kMergeEid:
      return StrFormat("[%s] merge eid %lld = %lld", rule_id.c_str(),
                       static_cast<long long>(eid_a),
                       static_cast<long long>(eid_b));
    case Kind::kSetValue:
      return StrFormat("[%s] rel %d eid %lld attr %d := %s", rule_id.c_str(),
                       rel, static_cast<long long>(eid), attr,
                       value.ToString().c_str());
    case Kind::kTemporalOrder:
      return StrFormat("[%s] rel %d attr %d: %lld %s %lld", rule_id.c_str(),
                       rel, attr, static_cast<long long>(tid1),
                       strict ? "<" : "<=", static_cast<long long>(tid2));
  }
  return "?";
}

FixStore::FixStore(const Database* db) : db_(db) {
  for (size_t rel = 0; rel < db_->num_relations(); ++rel) {
    const Relation& relation = db_->relation(static_cast<int>(rel));
    for (size_t row = 0; row < relation.size(); ++row) {
      const Tuple& t = relation.tuple(row);
      eid_index_[t.eid].emplace_back(static_cast<int>(rel), t.tid);
    }
  }
}

FixStore::Checkpoint FixStore::TakeCheckpoint() const {
  Checkpoint cp;
  cp.fixes = fixes_.size();
  cp.value_cells = values_.size();
  cp.merges = eids_.num_merges();
  cp.distinct = distinct_.size();
  cp.ground_truth_cells = ground_truth_cells_;
  cp.provenance_nodes = static_cast<int64_t>(prov_.size());
  return cp;
}

void FixStore::RegisterTuple(int rel, int64_t tid) {
  const Tuple* t = FindTuple(rel, tid);
  if (t == nullptr) return;
  auto& list = eid_index_[t->eid];
  if (std::find(list.begin(), list.end(), std::make_pair(rel, tid)) ==
      list.end()) {
    list.emplace_back(rel, tid);
  }
}

std::vector<std::pair<int, int64_t>> FixStore::TuplesOfEntity(
    int64_t eid) const {
  std::vector<std::pair<int, int64_t>> out;
  for (int64_t member : eids_.Members(eid)) {
    auto it = eid_index_.find(member);
    if (it == eid_index_.end()) continue;
    out.insert(out.end(), it->second.begin(), it->second.end());
  }
  return out;
}

std::vector<int64_t> FixStore::PatchedTids(int rel, int attr) const {
  std::vector<int64_t> out;
  auto lo = values_.lower_bound(std::make_tuple(rel, attr, INT64_MIN));
  for (auto it = lo; it != values_.end(); ++it) {
    if (std::get<0>(it->first) != rel || std::get<1>(it->first) != attr) {
      break;
    }
    out.push_back(std::get<2>(it->first));
  }
  return out;
}

const Tuple* FixStore::FindTuple(int rel, int64_t tid) const {
  const Relation& relation = db_->relation(rel);
  int row = relation.RowOfTid(tid);
  return row < 0 ? nullptr : &relation.tuple(static_cast<size_t>(row));
}

int64_t FixStore::CanonicalEid(int rel, int64_t tid) const {
  const Tuple* t = FindTuple(rel, tid);
  return t == nullptr ? -1 : eids_.Find(t->eid);
}

Status FixStore::AddGroundTruthTuple(int rel, int64_t tid) {
  const Tuple* t = FindTuple(rel, tid);
  if (t == nullptr) {
    return Status::NotFound("no tuple with tid " + std::to_string(tid));
  }
  for (size_t attr = 0; attr < t->values.size(); ++attr) {
    ROCK_RETURN_IF_ERROR(
        AddGroundTruthValue(rel, tid, static_cast<int>(attr),
                            t->values[attr]));
  }
  return Status::Ok();
}

Status FixStore::AddGroundTruthValue(int rel, int64_t tid, int attr,
                                     Value value) {
  bool changed = false;
  Status s = SetValue(rel, tid, attr, std::move(value), "Γ", &changed);
  if (s.ok() && changed) ++ground_truth_cells_;
  return s;
}

Status FixStore::AddGroundTruthOrder(int rel, int attr, int64_t tid1,
                                     int64_t tid2, bool strict) {
  bool changed = false;
  return AddTemporal(rel, attr, tid1, tid2, strict, "Γ", &changed);
}

Status FixStore::MergeEids(int64_t a, int64_t b, const std::string& rule_id,
                           bool* changed, const obs::ProvenanceRef& prov) {
  *changed = false;
  int64_t ra = eids_.Find(a);
  int64_t rb = eids_.Find(b);
  if (ra == rb) return Status::Ok();
  int64_t lo = std::min(ra, rb), hi = std::max(ra, rb);
  if (distinct_.count({lo, hi}) > 0) {
    return Status::Conflict("eids " + std::to_string(a) + " and " +
                            std::to_string(b) +
                            " are validated as distinct entities");
  }
  int64_t merged = eids_.Union(ra, rb);
  (void)merged;
  // Re-canonicalize distinctness constraints touching the merged classes.
  std::set<std::pair<int64_t, int64_t>> rebuilt;
  std::map<std::pair<int64_t, int64_t>, int64_t> rebuilt_prov;
  for (const auto& [x, y] : distinct_) {
    int64_t cx = eids_.Find(x);
    int64_t cy = eids_.Find(y);
    if (cx == cy) {
      return Status::Conflict("merge collapses a distinctness constraint");
    }
    auto new_key = std::make_pair(std::min(cx, cy), std::max(cx, cy));
    rebuilt.insert(new_key);
    if constexpr (obs::kProvenanceEnabled) {
      auto it = prov_by_distinct_.find({x, y});
      if (it != prov_by_distinct_.end()) rebuilt_prov[new_key] = it->second;
    }
  }
  distinct_ = std::move(rebuilt);
  if constexpr (obs::kProvenanceEnabled) {
    prov_by_distinct_ = std::move(rebuilt_prov);
  }
  FixRecord record;
  record.kind = FixRecord::Kind::kMergeEid;
  record.rule_id = rule_id;
  record.eid_a = a;
  record.eid_b = b;
  if constexpr (obs::kProvenanceEnabled) {
    record.prov_id = AddProvNode(
        rule_id == "Γ" ? obs::ProvKind::kGroundTruth : obs::ProvKind::kFix,
        rule_id, record.ToString(), prov);
    prov_.LinkMerge(a, b, record.prov_id);
  }
  fixes_.push_back(std::move(record));
  *changed = true;
  return Status::Ok();
}

Status FixStore::AddEidDistinct(int64_t a, int64_t b,
                                const std::string& rule_id, bool* changed,
                                const obs::ProvenanceRef& prov) {
  *changed = false;
  int64_t ra = eids_.Find(a);
  int64_t rb = eids_.Find(b);
  if (ra == rb) {
    return Status::Conflict("eids " + std::to_string(a) + " and " +
                            std::to_string(b) + " were already identified");
  }
  auto key = std::make_pair(std::min(ra, rb), std::max(ra, rb));
  if (distinct_.insert(key).second) {
    FixRecord record;
    record.kind = FixRecord::Kind::kMergeEid;  // recorded as an ER fact
    record.rule_id = rule_id;
    record.eid_a = a;
    record.eid_b = b;
    if constexpr (obs::kProvenanceEnabled) {
      record.prov_id = AddProvNode(
          rule_id == "Γ" ? obs::ProvKind::kGroundTruth : obs::ProvKind::kFix,
          rule_id,
          StrFormat("[%s] eid %lld != %lld", rule_id.c_str(),
                    static_cast<long long>(a), static_cast<long long>(b)),
          prov);
      prov_by_distinct_[key] = record.prov_id;
    }
    fixes_.push_back(std::move(record));
    *changed = true;
  }
  return Status::Ok();
}

Status FixStore::SetValue(int rel, int64_t tid, int attr, Value v,
                          const std::string& rule_id, bool* changed,
                          const obs::ProvenanceRef& prov) {
  *changed = false;
  const Tuple* t = FindTuple(rel, tid);
  if (t == nullptr) {
    return Status::NotFound("no tuple with tid " + std::to_string(tid));
  }
  auto key = std::make_tuple(rel, attr, tid);
  auto it = values_.find(key);
  if (it != values_.end()) {
    if (it->second == v) return Status::Ok();
    return Status::Conflict(
        "attribute already validated to a different value: " +
        it->second.ToString() + " vs " + v.ToString());
  }
  values_by_hash_[std::make_tuple(rel, attr, v.Hash())].push_back(tid);
  values_.emplace(key, v);
  FixRecord record;
  record.kind = FixRecord::Kind::kSetValue;
  record.rule_id = rule_id;
  record.rel = rel;
  record.attr = attr;
  record.eid = t->eid;
  record.tid1 = tid;
  record.value = std::move(v);
  if constexpr (obs::kProvenanceEnabled) {
    record.prov_id = AddProvNode(
        rule_id == "Γ" ? obs::ProvKind::kGroundTruth : obs::ProvKind::kFix,
        rule_id, record.ToString(), prov);
    prov_by_cell_[key] = record.prov_id;
  }
  fixes_.push_back(std::move(record));
  *changed = true;
  return Status::Ok();
}

Status FixStore::ReplaceValue(int rel, int64_t tid, int attr, Value v,
                              const std::string& rule_id,
                              const obs::ProvenanceRef& prov) {
  const Tuple* t = FindTuple(rel, tid);
  if (t == nullptr) {
    return Status::NotFound("no tuple with tid " + std::to_string(tid));
  }
  auto key = std::make_tuple(rel, attr, tid);
  auto old = values_.find(key);
  if (old != values_.end() && !(old->second == v)) {
    // Drop the superseded hash-bucket entry so PatchedTidsEq never serves
    // this tid under the old value's hash (a stale entry would surface the
    // tid as an equality candidate for a value it no longer holds).
    auto bucket =
        values_by_hash_.find(std::make_tuple(rel, attr, old->second.Hash()));
    if (bucket != values_by_hash_.end()) {
      auto& tids = bucket->second;
      tids.erase(std::remove(tids.begin(), tids.end(), tid), tids.end());
      if (tids.empty()) values_by_hash_.erase(bucket);
    }
  }
  values_by_hash_[std::make_tuple(rel, attr, v.Hash())].push_back(tid);
  values_[key] = v;
  FixRecord record;
  record.kind = FixRecord::Kind::kSetValue;
  record.rule_id = rule_id;
  record.rel = rel;
  record.attr = attr;
  record.eid = t->eid;
  record.tid1 = tid;
  record.value = std::move(v);
  if constexpr (obs::kProvenanceEnabled) {
    record.prov_id = AddProvNode(
        rule_id == "Γ" ? obs::ProvKind::kGroundTruth : obs::ProvKind::kFix,
        rule_id, record.ToString(), prov);
    prov_by_cell_[key] = record.prov_id;
  }
  fixes_.push_back(std::move(record));
  return Status::Ok();
}

std::optional<Value> FixStore::ValidatedValue(int rel, int64_t tid,
                                              int attr) const {
  auto it = values_.find(std::make_tuple(rel, attr, tid));
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

bool FixStore::IsValidated(int rel, int64_t tid, int attr) const {
  return ValidatedValue(rel, tid, attr).has_value();
}

Status FixStore::AddTemporal(int rel, int attr, int64_t tid1, int64_t tid2,
                             bool strict, const std::string& rule_id,
                             bool* changed, const obs::ProvenanceRef& prov) {
  *changed = false;
  bool added = false;
  Status s = temporal_[{rel, attr}].Add(tid1, tid2, strict, &added);
  if (!s.ok()) return s;
  if (added) {
    FixRecord record;
    record.kind = FixRecord::Kind::kTemporalOrder;
    record.rule_id = rule_id;
    record.rel = rel;
    record.attr = attr;
    record.tid1 = tid1;
    record.tid2 = tid2;
    record.strict = strict;
    if constexpr (obs::kProvenanceEnabled) {
      record.prov_id = AddProvNode(
          rule_id == "Γ" ? obs::ProvKind::kGroundTruth : obs::ProvKind::kFix,
          rule_id, record.ToString(), prov);
      prov_by_temporal_[std::make_tuple(rel, attr, std::min(tid1, tid2),
                                        std::max(tid1, tid2))] =
          record.prov_id;
    }
    fixes_.push_back(std::move(record));
    *changed = true;
  }
  return Status::Ok();
}

int64_t FixStore::AddProvNode(obs::ProvKind kind, const std::string& rule_id,
                              std::string target,
                              const obs::ProvenanceRef& prov) {
  if constexpr (!obs::kProvenanceEnabled) {
    (void)kind;
    (void)rule_id;
    (void)target;
    (void)prov;
    return -1;
  }
  obs::ProvenanceNode node;
  node.kind = kind;
  node.rule_id = rule_id;
  node.target = std::move(target);
  if (prov.witness != nullptr) {
    node.witness = *prov.witness;
    // Upgrade premise sources against the validated state: a cell another
    // deduction (or Γ) validated is a prior-fix / ground-truth premise
    // with an upstream edge to its node; everything else stays raw/oracle.
    for (obs::PremiseCell& cell : node.witness.premises) {
      if (cell.attr < 0) continue;  // eid / oracle pseudo-cells
      int64_t up = ProvOfCell(cell.rel, cell.tid, cell.attr);
      if (up < 0) continue;
      const obs::ProvenanceNode* up_node = prov_.Get(up);
      cell.source = up_node != nullptr &&
                            up_node->kind == obs::ProvKind::kGroundTruth
                        ? obs::PremiseSource::kGroundTruth
                        : obs::PremiseSource::kPriorFix;
      cell.upstream = up;
      node.upstream.push_back(up);
    }
  }
  return prov_.Add(std::move(node));
}

int64_t FixStore::ProvOfCell(int rel, int64_t tid, int attr) const {
  auto it = prov_by_cell_.find(std::make_tuple(rel, attr, tid));
  return it == prov_by_cell_.end() ? -1 : it->second;
}

int64_t FixStore::ProvOfTemporal(int rel, int attr, int64_t tid1,
                                 int64_t tid2) const {
  auto it = prov_by_temporal_.find(std::make_tuple(
      rel, attr, std::min(tid1, tid2), std::max(tid1, tid2)));
  return it == prov_by_temporal_.end() ? -1 : it->second;
}

int64_t FixStore::ProvOfDistinct(int64_t a, int64_t b) const {
  int64_t ra = eids_.Find(a);
  int64_t rb = eids_.Find(b);
  auto it =
      prov_by_distinct_.find({std::min(ra, rb), std::max(ra, rb)});
  return it == prov_by_distinct_.end() ? -1 : it->second;
}

int64_t FixStore::ProvOfMerge(int64_t a, int64_t b) const {
  std::vector<int64_t> path = prov_.MergePath(a, b);
  return path.empty() ? -1 : path.back();
}

int64_t FixStore::AddConflictCandidate(const std::string& rule_id,
                                       std::string target,
                                       const obs::ProvenanceRef& prov) {
  return AddProvNode(obs::ProvKind::kConflictCandidate, rule_id,
                     std::move(target), prov);
}

obs::ProofTree FixStore::ExplainCell(int rel, int64_t tid, int attr,
                                     int max_depth) const {
  return prov_.Expand(ProvOfCell(rel, tid, attr), max_depth);
}

obs::ProofTree FixStore::ExplainMerge(int64_t eid_a, int64_t eid_b,
                                      int max_depth) const {
  return prov_.ExplainMerge(eid_a, eid_b, max_depth);
}

std::vector<int64_t> FixStore::PatchedTidsEq(int rel, int attr,
                                             uint64_t value_hash) const {
  auto it = values_by_hash_.find(std::make_tuple(rel, attr, value_hash));
  if (it == values_by_hash_.end()) return {};
  return it->second;
}

std::optional<Value> FixStore::GetCell(int rel, int64_t tid, int attr) const {
  return ValidatedValue(rel, tid, attr);
}

std::optional<int64_t> FixStore::GetEid(int rel, int64_t tid) const {
  int64_t eid = CanonicalEid(rel, tid);
  if (eid < 0) return std::nullopt;
  return eid;
}

std::optional<bool> FixStore::Holds(int rel, int attr, int64_t tid1,
                                    int64_t tid2, bool strict) const {
  auto it = temporal_.find({rel, attr});
  if (it == temporal_.end()) return std::nullopt;
  return it->second.Holds(tid1, tid2, strict);
}

}  // namespace rock::chase
