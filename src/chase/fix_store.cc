#include "src/chase/fix_store.h"

#include <algorithm>

#include "src/common/strings.h"

namespace rock::chase {

int64_t UnionFind::Find(int64_t eid) const {
  // Pure walk, no path compression: Find must stay safe for concurrent
  // readers (see the thread contract in the header). Union keeps chains
  // one level deep by re-pointing the merged class's members eagerly, so
  // the walk is short anyway.
  int64_t root = eid;
  for (auto it = parent_.find(root); it != parent_.end();
       it = parent_.find(root)) {
    root = it->second;
  }
  return root;
}

int64_t UnionFind::Union(int64_t a, int64_t b) {
  int64_t ra = Find(a);
  int64_t rb = Find(b);
  if (ra == rb) return ra;
  // Smaller id becomes the canonical representative so the result is
  // independent of merge order.
  int64_t root = std::min(ra, rb);
  int64_t child = std::max(ra, rb);
  parent_[child] = root;
  // Eager compression (the mutating half of the thread contract): every
  // member of the absorbed class points directly at the new root.
  auto absorbed = members_.find(child);
  if (absorbed != members_.end()) {
    for (int64_t member : absorbed->second) parent_[member] = root;
  }
  auto& root_members = members_[root];
  if (root_members.empty()) root_members.push_back(root);
  auto child_it = members_.find(child);
  if (child_it != members_.end()) {
    root_members.insert(root_members.end(), child_it->second.begin(),
                        child_it->second.end());
    members_.erase(child_it);
  } else {
    root_members.push_back(child);
  }
  ++num_merges_;
  return root;
}

std::vector<int64_t> UnionFind::Members(int64_t eid) const {
  int64_t root = Find(eid);
  auto it = members_.find(root);
  if (it == members_.end()) return {root};
  return it->second;
}

bool TemporalOrderStore::Reaches(int64_t from, int64_t to,
                                 bool* via_strict) const {
  if (from == to) {
    *via_strict = false;
    return true;
  }
  // DFS tracking whether any strict edge appears on the path. A vertex may
  // need revisiting if first reached only via non-strict paths, so visited
  // states carry the strictness flag (2 states per vertex).
  std::set<std::pair<int64_t, bool>> visited;
  std::vector<std::pair<int64_t, bool>> stack = {{from, false}};
  bool reachable = false;
  bool strict_path = false;
  while (!stack.empty()) {
    auto [node, strict_so_far] = stack.back();
    stack.pop_back();
    if (!visited.insert({node, strict_so_far}).second) continue;
    auto it = out_.find(node);
    if (it == out_.end()) continue;
    for (const Edge& e : it->second) {
      bool next_strict = strict_so_far || e.strict;
      if (e.to == to) {
        reachable = true;
        if (next_strict) {
          *via_strict = true;
          return true;
        }
        strict_path = strict_path || next_strict;
        continue;
      }
      stack.push_back({e.to, next_strict});
    }
  }
  if (reachable) {
    *via_strict = false;
    return true;
  }
  return false;
}

Status TemporalOrderStore::Add(int64_t tid1, int64_t tid2, bool strict,
                               bool* added) {
  *added = false;
  if (tid1 == tid2) {
    if (strict) {
      return Status::Conflict("t ≺ t is unsatisfiable");
    }
    return Status::Ok();  // reflexive ⪯ is trivially true
  }
  bool via_strict = false;
  if (Reaches(tid1, tid2, &via_strict)) {
    // Already implied; a strict request is new information only if no
    // strict path exists yet.
    if (!strict || via_strict) return Status::Ok();
  }
  // Conflict check: does tid2 already reach tid1?
  bool back_strict = false;
  if (Reaches(tid2, tid1, &back_strict)) {
    if (strict || back_strict) {
      return Status::Conflict(
          "temporal cycle through a strict order: " + std::to_string(tid1) +
          " vs " + std::to_string(tid2));
    }
    // Non-strict cycle: both directions ⪯ — the values are equally
    // current; allowed.
  }
  out_[tid1].push_back({tid2, strict});
  ++num_pairs_;
  *added = true;
  return Status::Ok();
}

std::optional<bool> TemporalOrderStore::Holds(int64_t tid1, int64_t tid2,
                                              bool strict) const {
  if (tid1 == tid2) return !strict;
  bool via_strict = false;
  if (Reaches(tid1, tid2, &via_strict)) {
    if (!strict) return true;
    if (via_strict) return true;
    return std::nullopt;  // ⪯ known, ≺ unknown
  }
  bool back_strict = false;
  if (Reaches(tid2, tid1, &back_strict) && back_strict) {
    // tid2 ≺ tid1 implies not (tid1 ⪯ tid2).
    return false;
  }
  return std::nullopt;
}

std::string FixRecord::ToString() const {
  switch (kind) {
    case Kind::kMergeEid:
      return StrFormat("[%s] merge eid %lld = %lld", rule_id.c_str(),
                       static_cast<long long>(eid_a),
                       static_cast<long long>(eid_b));
    case Kind::kSetValue:
      return StrFormat("[%s] rel %d eid %lld attr %d := %s", rule_id.c_str(),
                       rel, static_cast<long long>(eid), attr,
                       value.ToString().c_str());
    case Kind::kTemporalOrder:
      return StrFormat("[%s] rel %d attr %d: %lld %s %lld", rule_id.c_str(),
                       rel, attr, static_cast<long long>(tid1),
                       strict ? "<" : "<=", static_cast<long long>(tid2));
  }
  return "?";
}

FixStore::FixStore(const Database* db) : db_(db) {
  for (size_t rel = 0; rel < db_->num_relations(); ++rel) {
    const Relation& relation = db_->relation(static_cast<int>(rel));
    for (size_t row = 0; row < relation.size(); ++row) {
      const Tuple& t = relation.tuple(row);
      eid_index_[t.eid].emplace_back(static_cast<int>(rel), t.tid);
    }
  }
}

void FixStore::RegisterTuple(int rel, int64_t tid) {
  const Tuple* t = FindTuple(rel, tid);
  if (t == nullptr) return;
  auto& list = eid_index_[t->eid];
  if (std::find(list.begin(), list.end(), std::make_pair(rel, tid)) ==
      list.end()) {
    list.emplace_back(rel, tid);
  }
}

std::vector<std::pair<int, int64_t>> FixStore::TuplesOfEntity(
    int64_t eid) const {
  std::vector<std::pair<int, int64_t>> out;
  for (int64_t member : eids_.Members(eid)) {
    auto it = eid_index_.find(member);
    if (it == eid_index_.end()) continue;
    out.insert(out.end(), it->second.begin(), it->second.end());
  }
  return out;
}

std::vector<int64_t> FixStore::PatchedTids(int rel, int attr) const {
  std::vector<int64_t> out;
  auto lo = values_.lower_bound(std::make_tuple(rel, attr, INT64_MIN));
  for (auto it = lo; it != values_.end(); ++it) {
    if (std::get<0>(it->first) != rel || std::get<1>(it->first) != attr) {
      break;
    }
    out.push_back(std::get<2>(it->first));
  }
  return out;
}

const Tuple* FixStore::FindTuple(int rel, int64_t tid) const {
  const Relation& relation = db_->relation(rel);
  int row = relation.RowOfTid(tid);
  return row < 0 ? nullptr : &relation.tuple(static_cast<size_t>(row));
}

int64_t FixStore::CanonicalEid(int rel, int64_t tid) const {
  const Tuple* t = FindTuple(rel, tid);
  return t == nullptr ? -1 : eids_.Find(t->eid);
}

Status FixStore::AddGroundTruthTuple(int rel, int64_t tid) {
  const Tuple* t = FindTuple(rel, tid);
  if (t == nullptr) {
    return Status::NotFound("no tuple with tid " + std::to_string(tid));
  }
  for (size_t attr = 0; attr < t->values.size(); ++attr) {
    ROCK_RETURN_IF_ERROR(
        AddGroundTruthValue(rel, tid, static_cast<int>(attr),
                            t->values[attr]));
  }
  return Status::Ok();
}

Status FixStore::AddGroundTruthValue(int rel, int64_t tid, int attr,
                                     Value value) {
  bool changed = false;
  Status s = SetValue(rel, tid, attr, std::move(value), "Γ", &changed);
  if (s.ok() && changed) ++ground_truth_cells_;
  return s;
}

Status FixStore::AddGroundTruthOrder(int rel, int attr, int64_t tid1,
                                     int64_t tid2, bool strict) {
  bool changed = false;
  return AddTemporal(rel, attr, tid1, tid2, strict, "Γ", &changed);
}

Status FixStore::MergeEids(int64_t a, int64_t b, const std::string& rule_id,
                           bool* changed) {
  *changed = false;
  int64_t ra = eids_.Find(a);
  int64_t rb = eids_.Find(b);
  if (ra == rb) return Status::Ok();
  int64_t lo = std::min(ra, rb), hi = std::max(ra, rb);
  if (distinct_.count({lo, hi}) > 0) {
    return Status::Conflict("eids " + std::to_string(a) + " and " +
                            std::to_string(b) +
                            " are validated as distinct entities");
  }
  int64_t merged = eids_.Union(ra, rb);
  (void)merged;
  // Re-canonicalize distinctness constraints touching the merged classes.
  std::set<std::pair<int64_t, int64_t>> rebuilt;
  for (const auto& [x, y] : distinct_) {
    int64_t cx = eids_.Find(x);
    int64_t cy = eids_.Find(y);
    if (cx == cy) {
      return Status::Conflict("merge collapses a distinctness constraint");
    }
    rebuilt.emplace(std::min(cx, cy), std::max(cx, cy));
  }
  distinct_ = std::move(rebuilt);
  FixRecord record;
  record.kind = FixRecord::Kind::kMergeEid;
  record.rule_id = rule_id;
  record.eid_a = a;
  record.eid_b = b;
  fixes_.push_back(std::move(record));
  *changed = true;
  return Status::Ok();
}

Status FixStore::AddEidDistinct(int64_t a, int64_t b,
                                const std::string& rule_id, bool* changed) {
  *changed = false;
  int64_t ra = eids_.Find(a);
  int64_t rb = eids_.Find(b);
  if (ra == rb) {
    return Status::Conflict("eids " + std::to_string(a) + " and " +
                            std::to_string(b) + " were already identified");
  }
  auto key = std::make_pair(std::min(ra, rb), std::max(ra, rb));
  if (distinct_.insert(key).second) {
    FixRecord record;
    record.kind = FixRecord::Kind::kMergeEid;  // recorded as an ER fact
    record.rule_id = rule_id;
    record.eid_a = a;
    record.eid_b = b;
    fixes_.push_back(std::move(record));
    *changed = true;
  }
  return Status::Ok();
}

Status FixStore::SetValue(int rel, int64_t tid, int attr, Value v,
                          const std::string& rule_id, bool* changed) {
  *changed = false;
  const Tuple* t = FindTuple(rel, tid);
  if (t == nullptr) {
    return Status::NotFound("no tuple with tid " + std::to_string(tid));
  }
  auto key = std::make_tuple(rel, attr, tid);
  auto it = values_.find(key);
  if (it != values_.end()) {
    if (it->second == v) return Status::Ok();
    return Status::Conflict(
        "attribute already validated to a different value: " +
        it->second.ToString() + " vs " + v.ToString());
  }
  values_by_hash_[std::make_tuple(rel, attr, v.Hash())].push_back(tid);
  values_.emplace(key, v);
  FixRecord record;
  record.kind = FixRecord::Kind::kSetValue;
  record.rule_id = rule_id;
  record.rel = rel;
  record.attr = attr;
  record.eid = t->eid;
  record.tid1 = tid;
  record.value = std::move(v);
  fixes_.push_back(std::move(record));
  *changed = true;
  return Status::Ok();
}

Status FixStore::ReplaceValue(int rel, int64_t tid, int attr, Value v,
                              const std::string& rule_id) {
  const Tuple* t = FindTuple(rel, tid);
  if (t == nullptr) {
    return Status::NotFound("no tuple with tid " + std::to_string(tid));
  }
  values_by_hash_[std::make_tuple(rel, attr, v.Hash())].push_back(tid);
  values_[std::make_tuple(rel, attr, tid)] = v;
  FixRecord record;
  record.kind = FixRecord::Kind::kSetValue;
  record.rule_id = rule_id;
  record.rel = rel;
  record.attr = attr;
  record.eid = t->eid;
  record.tid1 = tid;
  record.value = std::move(v);
  fixes_.push_back(std::move(record));
  return Status::Ok();
}

std::optional<Value> FixStore::ValidatedValue(int rel, int64_t tid,
                                              int attr) const {
  auto it = values_.find(std::make_tuple(rel, attr, tid));
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

bool FixStore::IsValidated(int rel, int64_t tid, int attr) const {
  return ValidatedValue(rel, tid, attr).has_value();
}

Status FixStore::AddTemporal(int rel, int attr, int64_t tid1, int64_t tid2,
                             bool strict, const std::string& rule_id,
                             bool* changed) {
  *changed = false;
  bool added = false;
  Status s = temporal_[{rel, attr}].Add(tid1, tid2, strict, &added);
  if (!s.ok()) return s;
  if (added) {
    FixRecord record;
    record.kind = FixRecord::Kind::kTemporalOrder;
    record.rule_id = rule_id;
    record.rel = rel;
    record.attr = attr;
    record.tid1 = tid1;
    record.tid2 = tid2;
    record.strict = strict;
    fixes_.push_back(std::move(record));
    *changed = true;
  }
  return Status::Ok();
}

std::vector<int64_t> FixStore::PatchedTidsEq(int rel, int attr,
                                             uint64_t value_hash) const {
  auto it = values_by_hash_.find(std::make_tuple(rel, attr, value_hash));
  if (it == values_by_hash_.end()) return {};
  return it->second;
}

std::optional<Value> FixStore::GetCell(int rel, int64_t tid, int attr) const {
  return ValidatedValue(rel, tid, attr);
}

std::optional<int64_t> FixStore::GetEid(int rel, int64_t tid) const {
  int64_t eid = CanonicalEid(rel, tid);
  if (eid < 0) return std::nullopt;
  return eid;
}

std::optional<bool> FixStore::Holds(int rel, int attr, int64_t tid1,
                                    int64_t tid2, bool strict) const {
  auto it = temporal_.find({rel, attr});
  if (it == temporal_.end()) return std::nullopt;
  return it->second.Holds(tid1, tid2, strict);
}

}  // namespace rock::chase
