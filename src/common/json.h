#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"

namespace rock::json {

/// A parsed JSON document node. This is the read side of the repo's JSON
/// story: obs::JsonWriter emits, json::Parse reads back — round-trip tests
/// (FixRecord/ConflictRecord serialization, BENCH_*.json assertions) and
/// the provenance importers go through here. Numbers are kept as doubles
/// (JSON has no integer type); Int() converts for the id-sized values the
/// fix-record schema uses.
class Value {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Value() = default;

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }

  bool AsBool() const { return bool_; }
  double AsNumber() const { return number_; }
  int64_t AsInt() const { return static_cast<int64_t>(number_); }
  const std::string& AsString() const { return string_; }
  const std::vector<Value>& AsArray() const { return array_; }
  const std::map<std::string, Value>& AsObject() const { return object_; }

  /// Object member lookup; nullptr when absent or not an object.
  const Value* Find(const std::string& key) const;

  /// Typed member accessors with defaults — the ergonomic path for
  /// deserializers: v.GetString("rule_id"), v.GetInt("tid", -1).
  std::string GetString(const std::string& key,
                        const std::string& fallback = "") const;
  int64_t GetInt(const std::string& key, int64_t fallback = 0) const;
  double GetNumber(const std::string& key, double fallback = 0.0) const;
  bool GetBool(const std::string& key, bool fallback = false) const;

  static Value MakeNull() { return Value(); }
  static Value MakeBool(bool v);
  static Value MakeNumber(double v);
  static Value MakeString(std::string v);
  static Value MakeArray(std::vector<Value> v);
  static Value MakeObject(std::map<std::string, Value> v);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Value> array_;
  std::map<std::string, Value> object_;
};

/// Parses one JSON document (recursive descent, UTF-8 passthrough, \uXXXX
/// escapes decoded for the BMP). Trailing whitespace is allowed; trailing
/// garbage is an error.
Result<Value> Parse(std::string_view text);

}  // namespace rock::json

