#include "src/common/json.h"

#include <cctype>
#include <cstdlib>

namespace rock::json {

const Value* Value::Find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

std::string Value::GetString(const std::string& key,
                             const std::string& fallback) const {
  const Value* v = Find(key);
  return (v != nullptr && v->kind() == Kind::kString) ? v->AsString()
                                                      : fallback;
}

int64_t Value::GetInt(const std::string& key, int64_t fallback) const {
  const Value* v = Find(key);
  return (v != nullptr && v->kind() == Kind::kNumber) ? v->AsInt() : fallback;
}

double Value::GetNumber(const std::string& key, double fallback) const {
  const Value* v = Find(key);
  return (v != nullptr && v->kind() == Kind::kNumber) ? v->AsNumber()
                                                      : fallback;
}

bool Value::GetBool(const std::string& key, bool fallback) const {
  const Value* v = Find(key);
  return (v != nullptr && v->kind() == Kind::kBool) ? v->AsBool() : fallback;
}

Value Value::MakeBool(bool v) {
  Value out;
  out.kind_ = Kind::kBool;
  out.bool_ = v;
  return out;
}

Value Value::MakeNumber(double v) {
  Value out;
  out.kind_ = Kind::kNumber;
  out.number_ = v;
  return out;
}

Value Value::MakeString(std::string v) {
  Value out;
  out.kind_ = Kind::kString;
  out.string_ = std::move(v);
  return out;
}

Value Value::MakeArray(std::vector<Value> v) {
  Value out;
  out.kind_ = Kind::kArray;
  out.array_ = std::move(v);
  return out;
}

Value Value::MakeObject(std::map<std::string, Value> v) {
  Value out;
  out.kind_ = Kind::kObject;
  out.object_ = std::move(v);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Value> Run() {
    SkipWs();
    Value root;
    Status s = ParseValue(&root, 0);
    if (!s.ok()) return s;
    SkipWs();
    if (pos_ != text_.size()) {
      return Error("trailing characters after document");
    }
    return root;
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status Error(const std::string& what) const {
    return Status::InvalidArgument("json: " + what + " at offset " +
                                   std::to_string(pos_));
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Expect(char c) {
    if (!Consume(c)) {
      return Error(std::string("expected '") + c + "'");
    }
    return Status::Ok();
  }

  Status ParseValue(Value* out, int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"': {
        std::string s;
        Status st = ParseString(&s);
        if (!st.ok()) return st;
        *out = Value::MakeString(std::move(s));
        return Status::Ok();
      }
      case 't':
        if (text_.substr(pos_, 4) == "true") {
          pos_ += 4;
          *out = Value::MakeBool(true);
          return Status::Ok();
        }
        return Error("invalid literal");
      case 'f':
        if (text_.substr(pos_, 5) == "false") {
          pos_ += 5;
          *out = Value::MakeBool(false);
          return Status::Ok();
        }
        return Error("invalid literal");
      case 'n':
        if (text_.substr(pos_, 4) == "null") {
          pos_ += 4;
          *out = Value::MakeNull();
          return Status::Ok();
        }
        return Error("invalid literal");
      default:
        return ParseNumber(out);
    }
  }

  Status ParseObject(Value* out, int depth) {
    ROCK_RETURN_IF_ERROR(Expect('{'));
    std::map<std::string, Value> members;
    SkipWs();
    if (Consume('}')) {
      *out = Value::MakeObject(std::move(members));
      return Status::Ok();
    }
    while (true) {
      SkipWs();
      std::string key;
      ROCK_RETURN_IF_ERROR(ParseString(&key));
      SkipWs();
      ROCK_RETURN_IF_ERROR(Expect(':'));
      SkipWs();
      Value member;
      ROCK_RETURN_IF_ERROR(ParseValue(&member, depth + 1));
      members[std::move(key)] = std::move(member);
      SkipWs();
      if (Consume(',')) continue;
      ROCK_RETURN_IF_ERROR(Expect('}'));
      break;
    }
    *out = Value::MakeObject(std::move(members));
    return Status::Ok();
  }

  Status ParseArray(Value* out, int depth) {
    ROCK_RETURN_IF_ERROR(Expect('['));
    std::vector<Value> items;
    SkipWs();
    if (Consume(']')) {
      *out = Value::MakeArray(std::move(items));
      return Status::Ok();
    }
    while (true) {
      SkipWs();
      Value item;
      ROCK_RETURN_IF_ERROR(ParseValue(&item, depth + 1));
      items.push_back(std::move(item));
      SkipWs();
      if (Consume(',')) continue;
      ROCK_RETURN_IF_ERROR(Expect(']'));
      break;
    }
    *out = Value::MakeArray(std::move(items));
    return Status::Ok();
  }

  Status ParseString(std::string* out) {
    ROCK_RETURN_IF_ERROR(Expect('"'));
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return Status::Ok();
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return Error("unterminated escape");
      char e = text_[pos_++];
      switch (e) {
        case '"':
        case '\\':
        case '/':
          out->push_back(e);
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("short \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Error("bad hex digit in \\u escape");
            }
          }
          // UTF-8 encode (BMP only; surrogate pairs are passed through as
          // two 3-byte sequences — fine for the escaping JsonWriter emits).
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Error("unknown escape");
      }
    }
    return Error("unterminated string");
  }

  Status ParseNumber(Value* out) {
    size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected a value");
    std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    double parsed = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return Error("malformed number");
    *out = Value::MakeNumber(parsed);
    return Status::Ok();
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<Value> Parse(std::string_view text) { return Parser(text).Run(); }

}  // namespace rock::json
