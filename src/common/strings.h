#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace rock {

/// Splits `text` on `delim`, keeping empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> Split(std::string_view text, char delim);

/// Joins `parts` with `delim` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view delim);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view text);

/// ASCII lowercase copy.
std::string ToLower(std::string_view text);

bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

/// Tokenizes on any non-alphanumeric character, lowercasing tokens.
/// "IPhone 14 (Discount ID 41)" -> {"iphone","14","discount","id","41"}.
std::vector<std::string> Tokenize(std::string_view text);

/// Tokenize + sort + dedup: the token *set* of `text` in a deterministic
/// order. The precomputed-token entry points below take these so batch
/// callers tokenize each distinct string once.
std::vector<std::string> SortedUniqueTokens(std::string_view text);

/// Levenshtein edit distance (insert/delete/substitute, unit costs).
/// Strings whose shorter side fits 64 characters run through Myers'
/// bit-parallel algorithm (one word of SWAR state per column); longer
/// inputs fall back to the rolling-row DP. Both are exact.
int EditDistance(std::string_view a, std::string_view b);

/// 1 - EditDistance(a,b) / max(|a|,|b|); 1.0 when both strings are empty.
double EditSimilarity(std::string_view a, std::string_view b);

/// Jaro-Winkler similarity in [0,1]; good for short names with typos.
/// Strings up to 64 characters keep the match/transposition bookkeeping in
/// uint64_t masks (SWAR) instead of per-character flag vectors; the result
/// is bitwise identical to the reference formulation for any length.
double JaroWinkler(std::string_view a, std::string_view b);

/// Jaccard similarity of the token sets of `a` and `b`.
double TokenJaccard(std::string_view a, std::string_view b);

/// TokenJaccard over pre-tokenized inputs (each must come from
/// SortedUniqueTokens). Bitwise identical to TokenJaccard on the original
/// strings; lets batch callers amortize tokenization across pairs.
double TokenJaccardSorted(const std::vector<std::string>& a,
                          const std::vector<std::string>& b);

/// Soft token similarity: each token of the smaller set is matched to its
/// best Jaro-Winkler counterpart in the other set; the mean of those best
/// scores. Robust to in-token typos where plain Jaccard collapses.
double SoftTokenSimilarity(std::string_view a, std::string_view b);

/// SoftTokenSimilarity over pre-tokenized inputs (raw Tokenize order,
/// duplicates preserved — multiplicity affects the mean). Bitwise identical
/// to SoftTokenSimilarity on the original strings.
double SoftTokenSimilarityTokens(const std::vector<std::string>& a,
                                 const std::vector<std::string>& b);

/// Printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace rock

