#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace rock {

/// Splits `text` on `delim`, keeping empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> Split(std::string_view text, char delim);

/// Joins `parts` with `delim` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view delim);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view text);

/// ASCII lowercase copy.
std::string ToLower(std::string_view text);

bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

/// Tokenizes on any non-alphanumeric character, lowercasing tokens.
/// "IPhone 14 (Discount ID 41)" -> {"iphone","14","discount","id","41"}.
std::vector<std::string> Tokenize(std::string_view text);

/// Levenshtein edit distance (insert/delete/substitute, unit costs).
int EditDistance(std::string_view a, std::string_view b);

/// 1 - EditDistance(a,b) / max(|a|,|b|); 1.0 when both strings are empty.
double EditSimilarity(std::string_view a, std::string_view b);

/// Jaro-Winkler similarity in [0,1]; good for short names with typos.
double JaroWinkler(std::string_view a, std::string_view b);

/// Jaccard similarity of the token sets of `a` and `b`.
double TokenJaccard(std::string_view a, std::string_view b);

/// Soft token similarity: each token of the smaller set is matched to its
/// best Jaro-Winkler counterpart in the other set; the mean of those best
/// scores. Robust to in-token typos where plain Jaccard collapses.
double SoftTokenSimilarity(std::string_view a, std::string_view b);

/// Printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace rock

