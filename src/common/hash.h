#pragma once

#include <cstdint>
#include <cstddef>
#include <string_view>

namespace rock {

/// CRC-32 (IEEE 802.3 polynomial, reflected). Crystal uses CRC-32 to hash
/// node addresses onto the consistent-hash ring (paper §5.1).
uint32_t Crc32(std::string_view data);

/// 64-bit FNV-1a hash of a byte string; the workhorse hash for dictionary
/// encoding, blocking keys and hashed feature indices.
uint64_t Hash64(std::string_view data);

/// Mixes a 64-bit integer (SplitMix64 finalizer). Useful for hashing ids.
uint64_t MixHash64(uint64_t x);

/// Combines two hashes (boost-style) into one.
uint64_t HashCombine(uint64_t seed, uint64_t value);

}  // namespace rock

