#pragma once

#include <mutex>
#include <shared_mutex>

#include "src/common/thread_annotations.h"

namespace rock::common {

/// Capability-annotated wrapper over std::mutex. Every lock in the library
/// outside src/common/ must be one of these wrappers (scripts/lint_rock.py
/// enforces it): a raw standard mutex carries no capability, so Clang's
/// thread safety analysis cannot tie ROCK_GUARDED_BY fields to it and the
/// locking discipline silently degrades to a comment.
class ROCK_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ROCK_ACQUIRE() { mu_.lock(); }
  void Unlock() ROCK_RELEASE() { mu_.unlock(); }
  bool TryLock() ROCK_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// Capability-annotated wrapper over std::shared_mutex (writer-exclusive,
/// reader-shared).
class ROCK_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() ROCK_ACQUIRE() { mu_.lock(); }
  void Unlock() ROCK_RELEASE() { mu_.unlock(); }
  bool TryLock() ROCK_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  void LockShared() ROCK_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() ROCK_RELEASE_SHARED() { mu_.unlock_shared(); }
  bool TryLockShared() ROCK_TRY_ACQUIRE_SHARED(true) {
    return mu_.try_lock_shared();
  }

 private:
  std::shared_mutex mu_;
};

/// RAII exclusive lock over Mutex (the annotated replacement for
/// std::lock_guard).
class ROCK_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ROCK_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;
  ~MutexLock() ROCK_RELEASE() { mu_.Unlock(); }

 private:
  Mutex& mu_;
};

/// RAII exclusive lock over SharedMutex.
class ROCK_SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mu) ROCK_ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;
  ~WriterLock() ROCK_RELEASE() { mu_.Unlock(); }

 private:
  SharedMutex& mu_;
};

/// RAII shared (read) lock over SharedMutex.
class ROCK_SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mu) ROCK_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.LockShared();
  }
  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;
  ~ReaderLock() ROCK_RELEASE() { mu_.UnlockShared(); }

 private:
  SharedMutex& mu_;
};

/// A zero-cost capability with no runtime lock behind it: a *thread role*
/// (Clang TSA's capability model covers roles as well as locks). It encodes
/// single-writer phase discipline — e.g. "FixStore mutators run only on the
/// chase's serial apply thread" — as a compile-time contract: mutators are
/// annotated ROCK_REQUIRES(role), so any new call site must visibly take a
/// RoleGuard, acknowledging the contract, or Clang rejects the build. The
/// guard compiles to nothing; which thread actually holds the role remains
/// a (documented, TSan-checked) human invariant.
class ROCK_CAPABILITY("role") ThreadRole {
 public:
  ThreadRole() = default;
  ThreadRole(const ThreadRole&) = delete;
  ThreadRole& operator=(const ThreadRole&) = delete;

  void Acquire() const ROCK_ACQUIRE() {}
  void Release() const ROCK_RELEASE() {}
};

/// RAII scope for a ThreadRole; runtime no-op.
class ROCK_SCOPED_CAPABILITY RoleGuard {
 public:
  explicit RoleGuard(const ThreadRole& role) ROCK_ACQUIRE(role)
      : role_(role) {
    role_.Acquire();
  }
  RoleGuard(const RoleGuard&) = delete;
  RoleGuard& operator=(const RoleGuard&) = delete;
  ~RoleGuard() ROCK_RELEASE() { role_.Release(); }

 private:
  const ThreadRole& role_;
};

}  // namespace rock::common
