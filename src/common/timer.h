#pragma once

#include <chrono>

namespace rock {

/// Monotonic wall-clock timer used by the benchmark harness and the cost
/// model's calibration path.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace rock

