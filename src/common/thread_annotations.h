#pragma once

/// Clang Thread Safety Analysis attribute macros (the ROCK_ prefix keeps
/// them greppable and avoids clashing with other libraries' spellings).
/// Under Clang these lower to the capability attributes the analysis
/// understands; under GCC and every other compiler they expand to nothing,
/// so annotated code stays portable. The contracts themselves are enforced
/// by the ROCK_THREAD_SAFETY CMake option, which adds
/// -Wthread-safety -Werror=thread-safety to Clang builds (default ON), and
/// by tests/thread_safety_compile_test.cmake, which proves at configure
/// time that an unguarded write to a ROCK_GUARDED_BY field fails to
/// compile.
///
/// The vocabulary (see https://clang.llvm.org/docs/ThreadSafetyAnalysis.html):
///  - ROCK_CAPABILITY marks a class as a capability (a lock, or a role);
///  - ROCK_GUARDED_BY(mu) on a field means reads and writes require mu;
///  - ROCK_REQUIRES(mu) on a function means callers must hold mu;
///  - ROCK_ACQUIRE/ROCK_RELEASE annotate lock/unlock methods;
///  - ROCK_SCOPED_CAPABILITY marks RAII guards (MutexLock, RoleGuard).

#if defined(__clang__)
#define ROCK_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define ROCK_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

#define ROCK_CAPABILITY(x) ROCK_THREAD_ANNOTATION(capability(x))

#define ROCK_SCOPED_CAPABILITY ROCK_THREAD_ANNOTATION(scoped_lockable)

#define ROCK_GUARDED_BY(x) ROCK_THREAD_ANNOTATION(guarded_by(x))

#define ROCK_PT_GUARDED_BY(x) ROCK_THREAD_ANNOTATION(pt_guarded_by(x))

#define ROCK_ACQUIRED_BEFORE(...) \
  ROCK_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))

#define ROCK_ACQUIRED_AFTER(...) \
  ROCK_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

#define ROCK_REQUIRES(...) \
  ROCK_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

#define ROCK_REQUIRES_SHARED(...) \
  ROCK_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

#define ROCK_ACQUIRE(...) \
  ROCK_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

#define ROCK_ACQUIRE_SHARED(...) \
  ROCK_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

#define ROCK_RELEASE(...) \
  ROCK_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

#define ROCK_RELEASE_SHARED(...) \
  ROCK_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

#define ROCK_RELEASE_GENERIC(...) \
  ROCK_THREAD_ANNOTATION(release_generic_capability(__VA_ARGS__))

#define ROCK_TRY_ACQUIRE(...) \
  ROCK_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

#define ROCK_TRY_ACQUIRE_SHARED(...) \
  ROCK_THREAD_ANNOTATION(try_acquire_shared_capability(__VA_ARGS__))

#define ROCK_EXCLUDES(...) ROCK_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

#define ROCK_ASSERT_CAPABILITY(x) ROCK_THREAD_ANNOTATION(assert_capability(x))

#define ROCK_ASSERT_SHARED_CAPABILITY(x) \
  ROCK_THREAD_ANNOTATION(assert_shared_capability(x))

#define ROCK_RETURN_CAPABILITY(x) ROCK_THREAD_ANNOTATION(lock_returned(x))

#define ROCK_NO_THREAD_SAFETY_ANALYSIS \
  ROCK_THREAD_ANNOTATION(no_thread_safety_analysis)
