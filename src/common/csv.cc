#include "src/common/csv.h"

#include <fstream>
#include <sstream>

namespace rock {

Result<CsvTable> CsvTable::Parse(std::string_view text) {
  CsvTable table;
  std::vector<std::string> record;
  std::string field;
  bool in_quotes = false;
  bool any_field = false;

  auto end_field = [&]() {
    record.push_back(std::move(field));
    field.clear();
    any_field = true;
  };
  auto end_record = [&]() -> Status {
    if (record.empty() && !any_field) return Status::Ok();
    if (table.header.empty()) {
      table.header = std::move(record);
    } else {
      if (record.size() != table.header.size()) {
        return Status::InvalidArgument(
            "CSV row has wrong number of fields: expected " +
            std::to_string(table.header.size()) + " got " +
            std::to_string(record.size()));
      }
      table.rows.push_back(std::move(record));
    }
    record.clear();
    any_field = false;
    return Status::Ok();
  };

  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(c);
      }
      continue;
    }
    switch (c) {
      case '"':
        in_quotes = true;
        break;
      case ',':
        end_field();
        break;
      case '\r':
        break;
      case '\n': {
        end_field();
        Status s = end_record();
        if (!s.ok()) return s;
        break;
      }
      default:
        field.push_back(c);
    }
  }
  if (in_quotes) return Status::InvalidArgument("CSV ends inside a quote");
  if (!field.empty() || any_field) {
    end_field();
    Status s = end_record();
    if (!s.ok()) return s;
  }
  if (table.header.empty()) {
    return Status::InvalidArgument("CSV has no header record");
  }
  return table;
}

Result<CsvTable> CsvTable::ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return Parse(buffer.str());
}

std::string CsvEscape(std::string_view field) {
  bool needs_quotes = field.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quotes) return std::string(field);
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

std::string CsvTable::ToCsv() const {
  std::string out;
  auto append_record = [&out](const std::vector<std::string>& record) {
    for (size_t i = 0; i < record.size(); ++i) {
      if (i > 0) out.push_back(',');
      out.append(CsvEscape(record[i]));
    }
    out.push_back('\n');
  };
  append_record(header);
  for (const auto& row : rows) append_record(row);
  return out;
}

}  // namespace rock
