#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace rock {

/// Deterministic xoshiro256**-based random number generator. Every stochastic
/// component in the library (workload generation, sampling, ML training) is
/// seeded explicitly so runs are reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound); bound must be > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Gaussian sample (Box-Muller) with the given mean and stddev.
  double NextGaussian(double mean = 0.0, double stddev = 1.0);

  /// True with probability p.
  bool NextBernoulli(double p);

  /// Samples an index in [0, weights.size()) proportionally to weights;
  /// Zipf-like skew is produced by the caller's weight choice.
  size_t NextWeighted(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = NextBounded(i);
      std::swap(items[i - 1], items[j]);
    }
  }

 private:
  uint64_t state_[4];
  bool have_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace rock

