#pragma once

#include <optional>
#include <string>
#include <utility>

namespace rock {

/// Error categories used across the library. The library does not use C++
/// exceptions; fallible operations return a Status or a Result<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kConflict,      // chase deduced mutually inconsistent fixes
  kUnimplemented,
  kInternal,
  kResourceExhausted,
};

/// Returns a stable human-readable name for `code` (e.g. "CONFLICT").
const char* StatusCodeName(StatusCode code);

/// A lightweight success-or-error value. Cheap to copy on the OK path (no
/// allocation); carries a message on the error path.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Conflict(std::string msg) {
    return Status(StatusCode::kConflict, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CODE>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Mirrors absl::StatusOr.
template <typename T>
class Result {
 public:
  /// Implicit from value and from Status so call sites can `return value;`
  /// or `return Status::NotFound(...)`.
  Result(T value) : status_(), value_(std::move(value)) {}  // NOLINT
  Result(Status status) : status_(std::move(status)) {      // NOLINT
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Precondition: ok(). Accessing the value of a failed Result is a
  /// programming error; behaviour is undefined (asserts in debug builds).
  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return std::move(*value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

  /// Returns the contained value or `fallback` when in the error state.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK status to the caller.
#define ROCK_RETURN_IF_ERROR(expr)             \
  do {                                         \
    ::rock::Status _rock_status = (expr);      \
    if (!_rock_status.ok()) return _rock_status; \
  } while (false)

}  // namespace rock

