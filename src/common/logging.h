#ifndef ROCK_COMMON_LOGGING_H_
#define ROCK_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace rock {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the minimum level that is emitted to stderr. Defaults to kWarning so
/// tests and benchmarks stay quiet; examples raise it to kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_logging {

/// Stream-style log sink; emits on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace rock

#define ROCK_LOG(level)                                          \
  ::rock::internal_logging::LogMessage(::rock::LogLevel::level, \
                                       __FILE__, __LINE__)

/// Fatal invariant check; aborts with a message when `cond` is false.
#define ROCK_CHECK(cond)                                                   \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ROCK_LOG(kError) << "CHECK failed: " #cond;                          \
      ::abort();                                                           \
    }                                                                      \
  } while (false)

#endif  // ROCK_COMMON_LOGGING_H_
