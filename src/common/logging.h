#pragma once

#include <sstream>
#include <string>

namespace rock {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the minimum level that is emitted to stderr. The default is
/// kWarning (tests and benchmarks stay quiet) unless the ROCK_LOG_LEVEL
/// environment variable (debug|info|warning|error) overrides it, so
/// benches and examples can raise verbosity without recompiling.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_logging {

/// Small per-process id of the calling thread (t0, t1, ...), stable for
/// the thread's lifetime; part of every log line's prefix.
unsigned ThreadLogId();

/// Stream-style log sink. The full line — ISO-8601 UTC timestamp, level,
/// source location, thread id, message, newline — is built in the buffer
/// and emitted with a single fwrite, so concurrent workers never
/// interleave partial lines on stderr.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

/// Fatal sink behind ROCK_CHECK: emits regardless of the log level, then
/// aborts — after any streamed context has been appended.
class CheckFailed {
 public:
  CheckFailed(const char* file, int line, const char* condition);
  ~CheckFailed();

  CheckFailed(const CheckFailed&) = delete;
  CheckFailed& operator=(const CheckFailed&) = delete;

  template <typename T>
  CheckFailed& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

/// Lowers a CheckFailed chain to void so it can sit in the else-branch of
/// ROCK_CHECK's conditional expression.
struct Voidify {
  void operator&(const CheckFailed&) {}
};

}  // namespace internal_logging
}  // namespace rock

#define ROCK_LOG(level)                                          \
  ::rock::internal_logging::LogMessage(::rock::LogLevel::level, \
                                       __FILE__, __LINE__)

/// Fatal invariant check; aborts with a message when `cond` is false.
/// Accepts streamed context: ROCK_CHECK(ok) << "rule=" << id;
#define ROCK_CHECK(cond)                                    \
  (cond) ? (void)0                                          \
         : ::rock::internal_logging::Voidify() &            \
               ::rock::internal_logging::CheckFailed(       \
                   __FILE__, __LINE__, #cond)

