#include "src/common/rng.h"

#include <cmath>

#include "src/common/hash.h"

namespace rock {
namespace {

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  // SplitMix64 seeding, as recommended by the xoshiro authors.
  uint64_t s = seed;
  for (auto& word : state_) {
    s += 0x9E3779B97F4A7C15ull;
    word = MixHash64(s);
  }
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  // Rejection sampling to avoid modulo bias.
  uint64_t threshold = -bound % bound;
  while (true) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBounded(span));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::NextGaussian(double mean, double stddev) {
  if (have_cached_gaussian_) {
    have_cached_gaussian_ = false;
    return mean + stddev * cached_gaussian_;
  }
  double u1 = 0.0;
  while (u1 <= 1e-12) u1 = NextDouble();
  double u2 = NextDouble();
  double radius = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = radius * std::sin(theta);
  have_cached_gaussian_ = true;
  return mean + stddev * radius * std::cos(theta);
}

bool Rng::NextBernoulli(double p) { return NextDouble() < p; }

size_t Rng::NextWeighted(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += w;
  if (total <= 0.0 || weights.empty()) return 0;
  double target = NextDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (target < acc) return i;
  }
  return weights.size() - 1;
}

}  // namespace rock
