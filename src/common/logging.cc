#include "src/common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <chrono>
#include <ctime>

namespace rock {
namespace {

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

/// Default level: ROCK_LOG_LEVEL if set and recognised, else kWarning.
int InitialLevel() {
  // Read once before any thread spawns (function-local static init), so
  // the mt-unsafe getenv cannot race a setenv.
  const char* env = std::getenv("ROCK_LOG_LEVEL");  // NOLINT(concurrency-mt-unsafe)
  if (env == nullptr) return static_cast<int>(LogLevel::kWarning);
  auto matches = [env](const char* name) {
    for (size_t i = 0;; ++i) {
      char a = env[i];
      char b = name[i];
      if (a >= 'A' && a <= 'Z') a = static_cast<char>(a - 'A' + 'a');
      if (a != b) return false;
      if (a == '\0') return true;
    }
  };
  if (matches("debug")) return static_cast<int>(LogLevel::kDebug);
  if (matches("info")) return static_cast<int>(LogLevel::kInfo);
  if (matches("warning") || matches("warn")) {
    return static_cast<int>(LogLevel::kWarning);
  }
  if (matches("error")) return static_cast<int>(LogLevel::kError);
  return static_cast<int>(LogLevel::kWarning);
}

std::atomic<int> g_min_level{InitialLevel()};

/// Builds the complete line — "[<ISO-8601>Z <level> <file>:<line> t<id>]
/// <body>\n" — and hands it to stderr as one fwrite, so lines from
/// concurrent threads never interleave mid-line.
void EmitLine(LogLevel level, const char* file, int line,
              const std::string& body) {
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }

  auto now = std::chrono::system_clock::now();
  std::time_t seconds = std::chrono::system_clock::to_time_t(now);
  int millis = static_cast<int>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          now.time_since_epoch())
          .count() %
      1000);
  if (millis < 0) millis += 1000;
  std::tm utc{};
  gmtime_r(&seconds, &utc);

  char prefix[128];
  std::snprintf(prefix, sizeof(prefix),
                "[%04d-%02d-%02dT%02d:%02d:%02d.%03dZ %s %s:%d t%u] ",
                utc.tm_year + 1900, utc.tm_mon + 1, utc.tm_mday, utc.tm_hour,
                utc.tm_min, utc.tm_sec, millis, LevelName(level), base, line,
                internal_logging::ThreadLogId());

  std::string full;
  full.reserve(std::strlen(prefix) + body.size() + 1);
  full += prefix;
  full += body;
  full += '\n';
  std::fwrite(full.data(), 1, full.size(), stderr);
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

namespace internal_logging {

unsigned ThreadLogId() {
  static std::atomic<unsigned> next{0};
  thread_local unsigned id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level), file_(file), line_(line) {}

LogMessage::~LogMessage() {
  if (static_cast<int>(level_) <
      g_min_level.load(std::memory_order_relaxed)) {
    return;
  }
  EmitLine(level_, file_, line_, stream_.str());
}

CheckFailed::CheckFailed(const char* file, int line, const char* condition)
    : file_(file), line_(line) {
  stream_ << "CHECK failed: " << condition << " ";
}

CheckFailed::~CheckFailed() {
  EmitLine(LogLevel::kError, file_, line_, stream_.str());
  std::abort();
}

}  // namespace internal_logging
}  // namespace rock
