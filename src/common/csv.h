#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"

namespace rock {

/// Minimal RFC-4180-style CSV support: quoted fields, embedded commas and
/// doubled quotes. Used by the loaders in src/storage and the examples.
class CsvTable {
 public:
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  /// Parses CSV text; the first record becomes `header`.
  static Result<CsvTable> Parse(std::string_view text);

  /// Reads and parses a CSV file from disk.
  static Result<CsvTable> ReadFile(const std::string& path);

  /// Serializes back to CSV text (quoting fields that need it).
  std::string ToCsv() const;
};

/// Quotes a single field if it contains a comma, quote or newline.
std::string CsvEscape(std::string_view field);

}  // namespace rock

