#include "src/common/strings.h"

#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <algorithm>
#include <bit>
#include <cctype>

namespace rock {

std::vector<std::string> Split(std::string_view text, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      break;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view delim) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(delim);
    out.append(parts[i]);
  }
  return out;
}

std::string_view Trim(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  size_t end = text.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::string ToLower(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::vector<std::string> Tokenize(std::string_view text) {
  std::vector<std::string> tokens;
  std::string current;
  for (char raw : text) {
    unsigned char c = static_cast<unsigned char>(raw);
    if (std::isalnum(c)) {
      current.push_back(static_cast<char>(std::tolower(c)));
    } else if (!current.empty()) {
      tokens.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

namespace {

/// Myers' bit-parallel Levenshtein (pattern `a`, |a| <= 64, text `b`): the
/// whole DP column lives in two uint64_t words, one text character per
/// step. Exact — identical to the rolling-row DP for every input.
int MyersEditDistance(std::string_view a, std::string_view b) {
  const int m = static_cast<int>(a.size());
  uint64_t peq[256] = {};
  for (int i = 0; i < m; ++i) {
    peq[static_cast<unsigned char>(a[static_cast<size_t>(i)])] |= 1ull << i;
  }
  uint64_t vp = ~0ull;
  uint64_t vn = 0;
  int score = m;
  const uint64_t last = 1ull << (m - 1);
  for (char tc : b) {
    const uint64_t eq = peq[static_cast<unsigned char>(tc)];
    const uint64_t xv = eq | vn;
    const uint64_t xh = (((eq & vp) + vp) ^ vp) | eq;
    uint64_t ph = vn | ~(xh | vp);
    const uint64_t mh = vp & xh;
    if (ph & last) {
      ++score;
    } else if (mh & last) {
      --score;
    }
    ph = (ph << 1) | 1;
    vp = (mh << 1) | ~(xv | ph);
    vn = ph & xv;
  }
  return score;
}

}  // namespace

int EditDistance(std::string_view a, std::string_view b) {
  if (a.size() > b.size()) std::swap(a, b);
  if (a.empty()) return static_cast<int>(b.size());
  if (a.size() <= 64) return MyersEditDistance(a, b);
  const size_t n = a.size();
  const size_t m = b.size();
  std::vector<int> prev(n + 1), cur(n + 1);
  for (size_t i = 0; i <= n; ++i) prev[i] = static_cast<int>(i);
  for (size_t j = 1; j <= m; ++j) {
    cur[0] = static_cast<int>(j);
    for (size_t i = 1; i <= n; ++i) {
      int sub = prev[i - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[i] = std::min({prev[i] + 1, cur[i - 1] + 1, sub});
    }
    std::swap(prev, cur);
  }
  return prev[n];
}

double EditSimilarity(std::string_view a, std::string_view b) {
  size_t longest = std::max(a.size(), b.size());
  if (longest == 0) return 1.0;
  return 1.0 - static_cast<double>(EditDistance(a, b)) /
                   static_cast<double>(longest);
}

namespace {

/// SWAR Jaro match/transposition counts for strings that fit one word:
/// per-character position masks of `b` replace the inner window scan, and
/// the matched flags live in two uint64_t words. Picks the same matches
/// (first unmatched `b` position in the window) as the reference loop.
void JaroMatchesSwar(std::string_view a, std::string_view b, int window,
                     int* matches, int* transpositions) {
  const int la = static_cast<int>(a.size());
  const int lb = static_cast<int>(b.size());
  uint64_t bpos[256] = {};
  for (int j = 0; j < lb; ++j) {
    bpos[static_cast<unsigned char>(b[static_cast<size_t>(j)])] |= 1ull << j;
  }
  uint64_t matched_a = 0;
  uint64_t matched_b = 0;
  *matches = 0;
  for (int i = 0; i < la; ++i) {
    const int lo = std::max(0, i - window);
    const int hi = std::min(lb - 1, i + window);
    if (hi < lo) continue;
    const int width = hi - lo + 1;
    const uint64_t span =
        (width >= 64 ? ~0ull : ((1ull << width) - 1) << lo);
    uint64_t cand = bpos[static_cast<unsigned char>(a[static_cast<size_t>(
                        i)])] &
                    span & ~matched_b;
    if (cand != 0) {
      matched_b |= cand & (~cand + 1);  // lowest set bit = first j
      matched_a |= 1ull << i;
      ++*matches;
    }
  }
  *transpositions = 0;
  uint64_t mb = matched_b;
  while (matched_a != 0) {
    const int i = std::countr_zero(matched_a);
    matched_a &= matched_a - 1;
    const int j = std::countr_zero(mb);
    mb &= mb - 1;
    if (a[static_cast<size_t>(i)] != b[static_cast<size_t>(j)]) {
      ++*transpositions;
    }
  }
}

void JaroMatchesReference(std::string_view a, std::string_view b, int window,
                          int* matches, int* transpositions) {
  const int la = static_cast<int>(a.size());
  const int lb = static_cast<int>(b.size());
  std::vector<bool> matched_a(la, false), matched_b(lb, false);
  *matches = 0;
  for (int i = 0; i < la; ++i) {
    int lo = std::max(0, i - window);
    int hi = std::min(lb - 1, i + window);
    for (int j = lo; j <= hi; ++j) {
      if (!matched_b[j] && a[i] == b[j]) {
        matched_a[i] = matched_b[j] = true;
        ++*matches;
        break;
      }
    }
  }
  *transpositions = 0;
  int j = 0;
  for (int i = 0; i < la; ++i) {
    if (!matched_a[i]) continue;
    while (!matched_b[j]) ++j;
    if (a[i] != b[j]) ++*transpositions;
    ++j;
  }
}

}  // namespace

double JaroWinkler(std::string_view a, std::string_view b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  const int la = static_cast<int>(a.size());
  const int lb = static_cast<int>(b.size());
  const int window = std::max(0, std::max(la, lb) / 2 - 1);

  int matches = 0;
  int transpositions = 0;
  if (la <= 64 && lb <= 64) {
    JaroMatchesSwar(a, b, window, &matches, &transpositions);
  } else {
    JaroMatchesReference(a, b, window, &matches, &transpositions);
  }
  if (matches == 0) return 0.0;
  double m = matches;
  double jaro = (m / la + m / lb + (m - transpositions / 2.0) / m) / 3.0;

  // Winkler prefix boost, capped at 4 common leading characters.
  int prefix = 0;
  for (int i = 0; i < std::min({la, lb, 4}); ++i) {
    if (a[i] == b[i]) {
      ++prefix;
    } else {
      break;
    }
  }
  return jaro + prefix * 0.1 * (1.0 - jaro);
}

std::vector<std::string> SortedUniqueTokens(std::string_view text) {
  std::vector<std::string> tokens = Tokenize(text);
  std::sort(tokens.begin(), tokens.end());
  tokens.erase(std::unique(tokens.begin(), tokens.end()), tokens.end());
  return tokens;
}

double TokenJaccard(std::string_view a, std::string_view b) {
  return TokenJaccardSorted(SortedUniqueTokens(a), SortedUniqueTokens(b));
}

double TokenJaccardSorted(const std::vector<std::string>& a,
                          const std::vector<std::string>& b) {
  if (a.empty() && b.empty()) return 1.0;
  // Merge walk over the two sorted, deduplicated token lists.
  size_t inter = 0;
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    const int cmp = a[i].compare(b[j]);
    if (cmp == 0) {
      ++inter;
      ++i;
      ++j;
    } else if (cmp < 0) {
      ++i;
    } else {
      ++j;
    }
  }
  const size_t uni = a.size() + b.size() - inter;
  if (uni == 0) return 1.0;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

double SoftTokenSimilarity(std::string_view a, std::string_view b) {
  return SoftTokenSimilarityTokens(Tokenize(a), Tokenize(b));
}

double SoftTokenSimilarityTokens(const std::vector<std::string>& a,
                                 const std::vector<std::string>& b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  const std::vector<std::string>* small = &a;
  const std::vector<std::string>* big = &b;
  if (small->size() > big->size()) std::swap(small, big);
  double total = 0.0;
  for (const std::string& tok : *small) {
    double best = 0.0;
    for (const std::string& other : *big) {
      best = std::max(best, JaroWinkler(tok, other));
    }
    total += best;
  }
  return total / static_cast<double>(small->size());
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace rock
