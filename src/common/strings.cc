#include "src/common/strings.h"

#include <cstdarg>
#include <cstdio>
#include <algorithm>
#include <cctype>
#include <unordered_set>

namespace rock {

std::vector<std::string> Split(std::string_view text, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      break;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view delim) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(delim);
    out.append(parts[i]);
  }
  return out;
}

std::string_view Trim(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  size_t end = text.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::string ToLower(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::vector<std::string> Tokenize(std::string_view text) {
  std::vector<std::string> tokens;
  std::string current;
  for (char raw : text) {
    unsigned char c = static_cast<unsigned char>(raw);
    if (std::isalnum(c)) {
      current.push_back(static_cast<char>(std::tolower(c)));
    } else if (!current.empty()) {
      tokens.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

int EditDistance(std::string_view a, std::string_view b) {
  if (a.size() > b.size()) std::swap(a, b);
  const size_t n = a.size();
  const size_t m = b.size();
  std::vector<int> prev(n + 1), cur(n + 1);
  for (size_t i = 0; i <= n; ++i) prev[i] = static_cast<int>(i);
  for (size_t j = 1; j <= m; ++j) {
    cur[0] = static_cast<int>(j);
    for (size_t i = 1; i <= n; ++i) {
      int sub = prev[i - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[i] = std::min({prev[i] + 1, cur[i - 1] + 1, sub});
    }
    std::swap(prev, cur);
  }
  return prev[n];
}

double EditSimilarity(std::string_view a, std::string_view b) {
  size_t longest = std::max(a.size(), b.size());
  if (longest == 0) return 1.0;
  return 1.0 - static_cast<double>(EditDistance(a, b)) /
                   static_cast<double>(longest);
}

double JaroWinkler(std::string_view a, std::string_view b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  const int la = static_cast<int>(a.size());
  const int lb = static_cast<int>(b.size());
  const int window = std::max(0, std::max(la, lb) / 2 - 1);

  std::vector<bool> matched_a(la, false), matched_b(lb, false);
  int matches = 0;
  for (int i = 0; i < la; ++i) {
    int lo = std::max(0, i - window);
    int hi = std::min(lb - 1, i + window);
    for (int j = lo; j <= hi; ++j) {
      if (!matched_b[j] && a[i] == b[j]) {
        matched_a[i] = matched_b[j] = true;
        ++matches;
        break;
      }
    }
  }
  if (matches == 0) return 0.0;

  // Count transpositions among matched characters.
  int transpositions = 0;
  int j = 0;
  for (int i = 0; i < la; ++i) {
    if (!matched_a[i]) continue;
    while (!matched_b[j]) ++j;
    if (a[i] != b[j]) ++transpositions;
    ++j;
  }
  double m = matches;
  double jaro = (m / la + m / lb + (m - transpositions / 2.0) / m) / 3.0;

  // Winkler prefix boost, capped at 4 common leading characters.
  int prefix = 0;
  for (int i = 0; i < std::min({la, lb, 4}); ++i) {
    if (a[i] == b[i]) {
      ++prefix;
    } else {
      break;
    }
  }
  return jaro + prefix * 0.1 * (1.0 - jaro);
}

double TokenJaccard(std::string_view a, std::string_view b) {
  std::vector<std::string> ta = Tokenize(a);
  std::vector<std::string> tb = Tokenize(b);
  if (ta.empty() && tb.empty()) return 1.0;
  std::unordered_set<std::string> sa(ta.begin(), ta.end());
  std::unordered_set<std::string> sb(tb.begin(), tb.end());
  size_t inter = 0;
  for (const auto& tok : sa) inter += sb.count(tok);
  size_t uni = sa.size() + sb.size() - inter;
  if (uni == 0) return 1.0;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

double SoftTokenSimilarity(std::string_view a, std::string_view b) {
  std::vector<std::string> ta = Tokenize(a);
  std::vector<std::string> tb = Tokenize(b);
  if (ta.empty() && tb.empty()) return 1.0;
  if (ta.empty() || tb.empty()) return 0.0;
  if (ta.size() > tb.size()) std::swap(ta, tb);
  double total = 0.0;
  for (const std::string& tok : ta) {
    double best = 0.0;
    for (const std::string& other : tb) {
      best = std::max(best, JaroWinkler(tok, other));
    }
    total += best;
  }
  return total / static_cast<double>(ta.size());
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace rock
