#include "src/common/hash.h"

#include <array>

namespace rock {
namespace {

std::array<uint32_t, 256> BuildCrc32Table() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

uint32_t Crc32(std::string_view data) {
  static const std::array<uint32_t, 256> kTable = BuildCrc32Table();
  uint32_t crc = 0xFFFFFFFFu;
  for (unsigned char byte : data) {
    crc = kTable[(crc ^ byte) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

uint64_t Hash64(std::string_view data) {
  uint64_t hash = 0xCBF29CE484222325ull;  // FNV offset basis.
  for (unsigned char byte : data) {
    hash ^= byte;
    hash *= 0x100000001B3ull;  // FNV prime.
  }
  return hash;
}

uint64_t MixHash64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

uint64_t HashCombine(uint64_t seed, uint64_t value) {
  return seed ^ (MixHash64(value) + 0x9E3779B97F4A7C15ull + (seed << 6) +
                 (seed >> 2));
}

}  // namespace rock
