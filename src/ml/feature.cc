#include "src/ml/feature.h"

#include <cmath>

#include <algorithm>
#include "src/common/hash.h"
#include "src/common/strings.h"
#include "src/ml/batch.h"

namespace rock::ml {

FeatureVector PairFeaturizer::Extract(const std::vector<Value>& a,
                                      const std::vector<Value>& b) const {
  FeatureVector out(static_cast<size_t>(dimension()), 0.0);
  for (int i = 0; i < num_attributes_; ++i) {
    const Value& va = a[static_cast<size_t>(i)];
    const Value& vb = b[static_cast<size_t>(i)];
    double* slot = &out[static_cast<size_t>(i * kFeaturesPerAttribute)];
    if (va.is_null() && vb.is_null()) {
      slot[1] = 1.0;
      continue;
    }
    if (va.is_null() || vb.is_null()) continue;
    slot[0] = (va == vb) ? 1.0 : 0.0;
    if (va.type() == ValueType::kString && vb.type() == ValueType::kString) {
      const std::string& sa = va.AsString();
      const std::string& sb = vb.AsString();
      slot[2] = EditSimilarity(sa, sb);
      slot[3] = JaroWinkler(sa, sb);
      slot[4] = TokenJaccard(sa, sb);
    } else if (va.ComparableWith(vb)) {
      double x = va.AsDouble();
      double y = vb.AsDouble();
      double denom = std::max({std::abs(x), std::abs(y), 1.0});
      slot[5] = 1.0 - std::min(1.0, std::abs(x - y) / denom);
    }
  }
  return out;
}

void PairFeaturizer::ExtractBatch(const PairBatch& batch,
                                  BatchScratch* scratch) const {
  std::vector<double>& matrix = scratch->matrix();
  matrix.assign(batch.size() * static_cast<size_t>(dimension()), 0.0);
  for (size_t row = 0; row < batch.size(); ++row) {
    const std::vector<Value>& a = batch.a[row];
    const std::vector<Value>& b = batch.b[row];
    double* out = &matrix[row * static_cast<size_t>(dimension())];
    for (int i = 0; i < num_attributes_; ++i) {
      const Value& va = a[static_cast<size_t>(i)];
      const Value& vb = b[static_cast<size_t>(i)];
      double* slot = out + i * kFeaturesPerAttribute;
      if (va.is_null() && vb.is_null()) {
        slot[1] = 1.0;
        continue;
      }
      if (va.is_null() || vb.is_null()) continue;
      slot[0] = (va == vb) ? 1.0 : 0.0;
      if (va.type() == ValueType::kString &&
          vb.type() == ValueType::kString) {
        const std::string& sa = va.AsString();
        const std::string& sb = vb.AsString();
        const uint32_t ida = scratch->InternString(sa);
        const uint32_t idb = scratch->InternString(sb);
        BatchScratch::SimEntry& memo = scratch->SimFor(ida, idb);
        if ((memo.have & BatchScratch::kEdit) == 0) {
          memo.edit = EditSimilarity(sa, sb);
          memo.have |= BatchScratch::kEdit;
        }
        if ((memo.have & BatchScratch::kJaroWinkler) == 0) {
          memo.jaro_winkler = JaroWinkler(sa, sb);
          memo.have |= BatchScratch::kJaroWinkler;
        }
        if ((memo.have & BatchScratch::kJaccard) == 0) {
          memo.jaccard = TokenJaccardSorted(scratch->SortedTokens(ida),
                                            scratch->SortedTokens(idb));
          memo.have |= BatchScratch::kJaccard;
        }
        slot[2] = memo.edit;
        slot[3] = memo.jaro_winkler;
        slot[4] = memo.jaccard;
      } else if (va.ComparableWith(vb)) {
        double x = va.AsDouble();
        double y = vb.AsDouble();
        double denom = std::max({std::abs(x), std::abs(y), 1.0});
        slot[5] = 1.0 - std::min(1.0, std::abs(x - y) / denom);
      }
    }
  }
}

FeatureVector HashedTextFeaturizer::Extract(std::string_view text) const {
  FeatureVector out(static_cast<size_t>(dimension_), 0.0);
  std::string lowered = ToLower(text);
  // Character n-grams over the padded string.
  std::string padded = "^" + lowered + "$";
  if (static_cast<int>(padded.size()) >= ngram_) {
    for (size_t i = 0; i + static_cast<size_t>(ngram_) <= padded.size(); ++i) {
      uint64_t h = Hash64(std::string_view(padded).substr(i, ngram_));
      out[h % static_cast<uint64_t>(dimension_)] += 1.0;
    }
  }
  // Whole tokens, offset by a salt so they do not collide with n-grams
  // systematically.
  for (const std::string& tok : Tokenize(lowered)) {
    uint64_t h = MixHash64(Hash64(tok) ^ 0x746F6B656Eull);
    out[h % static_cast<uint64_t>(dimension_)] += 1.0;
  }
  return out;
}

FeatureVector HashedTextFeaturizer::ExtractNormalized(
    std::string_view text) const {
  FeatureVector out = Extract(text);
  double norm = std::sqrt(Dot(out, out));
  if (norm > 0) {
    for (double& x : out) x /= norm;
  }
  return out;
}

double Dot(const FeatureVector& a, const FeatureVector& b) {
  double out = 0.0;
  size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) out += a[i] * b[i];
  return out;
}

double Cosine(const FeatureVector& a, const FeatureVector& b) {
  double na = std::sqrt(Dot(a, a));
  double nb = std::sqrt(Dot(b, b));
  if (na == 0.0 || nb == 0.0) return 0.0;
  return Dot(a, b) / (na * nb);
}

}  // namespace rock::ml
