#pragma once

#include <memory>
#include <vector>

#include "src/ml/feature.h"

namespace rock::ml {

/// A CART-style regression tree (variance-reducing axis-aligned splits).
/// Building block of GradientBoostedTrees below.
class DecisionTree {
 public:
  struct Options {
    int max_depth = 4;
    int min_samples_leaf = 4;
  };

  DecisionTree() = default;
  explicit DecisionTree(Options options) : options_(options) {}

  void Train(const std::vector<FeatureVector>& x,
             const std::vector<double>& y);

  double Predict(const FeatureVector& features) const {
    return PredictRow(features.data());
  }

  /// Predict over a raw feature row (the batched entry point); the row
  /// must span the training dimension.
  double PredictRow(const double* row) const;

  /// Total variance reduction attributed to each feature across splits.
  const std::vector<double>& feature_gain() const { return feature_gain_; }

 private:
  struct Node {
    int feature = -1;          // -1 => leaf
    double split_threshold = 0.0;
    double leaf_value = 0.0;
    int left = -1;
    int right = -1;
  };

  Options options_;
  std::vector<Node> nodes_;
  std::vector<double> feature_gain_;

  int BuildNode(const std::vector<FeatureVector>& x,
                const std::vector<double>& y, std::vector<int>& indices,
                int depth);
};

/// Gradient-boosted regression trees with squared loss — the XGBoost
/// stand-in of §5.4. Feature importance (summed split gain) ranks numeric
/// attributes for polynomial-expression discovery, and the model itself is
/// usable as a regressor or (via a logistic link at the caller) classifier.
class GradientBoostedTrees {
 public:
  struct Options {
    int num_trees = 30;
    double learning_rate = 0.2;
    DecisionTree::Options tree;
  };

  GradientBoostedTrees() = default;
  explicit GradientBoostedTrees(Options options) : options_(options) {}

  void Train(const std::vector<FeatureVector>& x,
             const std::vector<double>& y);

  double Predict(const FeatureVector& features) const {
    return PredictRow(features.data());
  }

  /// Predict over a raw feature row spanning the training dimension.
  /// Same tree order and accumulation as Predict — bitwise equal.
  double PredictRow(const double* row) const;

  /// Predicts `rows` consecutive rows of the row-major matrix `data`
  /// (`cols` doubles each), appending to *out; per-row PredictRow order.
  void PredictBatch(const double* data, size_t rows, size_t cols,
                    std::vector<double>* out) const;

  /// Per-feature importance (summed split gain over all trees), normalized
  /// to sum to 1 when any gain exists.
  std::vector<double> FeatureImportance() const;

  bool trained() const { return !trees_.empty(); }

 private:
  Options options_;
  double base_prediction_ = 0.0;
  std::vector<DecisionTree> trees_;
  size_t dimension_ = 0;
};

}  // namespace rock::ml

