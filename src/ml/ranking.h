#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "src/ml/feature.h"
#include "src/ml/linear.h"
#include "src/storage/relation.h"
#include "src/storage/schema.h"

namespace rock::ml {

/// Interface of the pairwise temporal ranking model M_rank(t1, t2, ⊗A)
/// (paper §2.2): predicts whether t1 ⊗A t2 for ⊗ ∈ {⪯, ≺}, and — for
/// conflict resolution (§4.2) — exposes a confidence score in [0,1].
class TemporalRanker {
 public:
  virtual ~TemporalRanker() = default;

  /// Confidence that t1 ⊗A t2 holds (t2's A-value at least as current as
  /// t1's when strict=false; strictly more current when strict=true).
  virtual double Confidence(const Tuple& t1, const Tuple& t2, int attr,
                            bool strict) const = 0;

  bool Predict(const Tuple& t1, const Tuple& t2, int attr,
               bool strict) const {
    return Confidence(t1, t2, attr, strict) >= 0.5;
  }
};

/// A currency constraint used by the critic: returns +1 when it can certify
/// t1 ⪯A t2, -1 for t2 ⪯A t1, and 0 when it is silent (paper [34]/[42],
/// e.g. "marital status only changes from single to married").
struct CurrencyConstraint {
  std::string name;
  std::function<int(const Schema&, const Tuple& t1, const Tuple& t2,
                    int attr)>
      judge;
};

/// The trained M_rank: a per-tuple recency score r(t) (linear in numeric
/// attributes, available timestamps and hashed text features of t[A]),
/// with P(t1 ⪯A t2) = sigmoid(r(t2) - r(t1)). The paper trains it
/// creator-critic style, interleaving model learning with verification
/// against currency constraints (§2.2, §4.2); TrainCreatorCritic reproduces
/// that loop: the creator ranks unlabeled pairs, the critic keeps the ones
/// certified by constraints (plus transitive consequences) as augmented
/// training data, and the model is refit each round.
class RankingModel : public TemporalRanker {
 public:
  struct Options {
    int rounds = 3;
    int text_dim = 64;
    LogisticRegression::Options logistic;
  };

  RankingModel(const Schema& schema, int attr);
  RankingModel(const Schema& schema, int attr, Options options);

  /// Supervised seed training: each (earlier, later) pair certifies
  /// earlier ⪯A later.
  void Train(const std::vector<std::pair<Tuple, Tuple>>& ordered_pairs);

  /// Creator-critic training over an unlabeled relation (see class doc).
  /// `constraints` is the critic's knowledge; `seed_pairs` may be empty.
  void TrainCreatorCritic(
      const Relation& relation,
      const std::vector<CurrencyConstraint>& constraints,
      const std::vector<std::pair<Tuple, Tuple>>& seed_pairs = {});

  double Confidence(const Tuple& t1, const Tuple& t2, int attr,
                    bool strict) const override;

  /// The learned recency score of a tuple (higher = more current).
  double RecencyScore(const Tuple& t) const;

  int attr() const { return attr_; }

 private:
  Schema schema_;
  int attr_;
  Options options_;
  HashedTextFeaturizer text_;
  LogisticRegression pair_model_;

  FeatureVector TupleFeatures(const Tuple& t) const;
  FeatureVector PairFeatures(const Tuple& t1, const Tuple& t2) const;
};

}  // namespace rock::ml

