#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/kg/graph.h"
#include "src/ml/batch.h"
#include "src/ml/feature.h"
#include "src/ml/linear.h"
#include "src/ml/tree.h"
#include "src/storage/relation.h"
#include "src/storage/schema.h"

namespace rock::ml {

/// Interface of a Boolean ML predicate M(t[A], s[B]) over two pairwise
/// compatible attribute vectors (paper §2.1). Any model whose output can be
/// thresholded to a Boolean can be embedded in an REE++ through this
/// interface.
class PairClassifier {
 public:
  virtual ~PairClassifier() = default;

  /// Match strength in [0,1].
  virtual double Score(const std::vector<Value>& a,
                       const std::vector<Value>& b) const = 0;

  /// The Boolean predicate value; by default Score >= threshold().
  virtual bool Predict(const std::vector<Value>& a,
                       const std::vector<Value>& b) const {
    return Score(a, b) >= threshold();
  }

  virtual double threshold() const { return 0.5; }

  /// Scores every pair of `batch` into *out (out->resize'd to
  /// batch.size(); out[i] corresponds to (batch.a[i], batch.b[i])).
  /// Contract: out[i] is bitwise equal to Score(batch.a[i], batch.b[i]) —
  /// overrides may reorder *which pair is scored when* and share work
  /// across rows through `scratch`, but each row's arithmetic must match
  /// the scalar path exactly. The default loops over Score. `scratch` may
  /// be nullptr (overrides then fall back to the scalar path).
  virtual void ScoreBatch(const PairBatch& batch, BatchScratch* scratch,
                          std::vector<double>* out) const;

  /// Blocking tokens for the filter-and-verify paradigm (§5.4): records
  /// with disjoint token sets are assumed non-matching by the filter.
  virtual std::vector<std::string> BlockTokens(
      const std::vector<Value>& a) const;
};

/// An untrained similarity-threshold classifier: the mean Jaro-Winkler /
/// numeric closeness across attribute pairs. Useful as a default model and
/// as the weak "pre-trained" starting point the trainable models refine.
class SimilarityClassifier : public PairClassifier {
 public:
  explicit SimilarityClassifier(double threshold = 0.85)
      : threshold_(threshold) {}

  double Score(const std::vector<Value>& a,
               const std::vector<Value>& b) const override;
  void ScoreBatch(const PairBatch& batch, BatchScratch* scratch,
                  std::vector<double>* out) const override;
  double threshold() const override { return threshold_; }

 private:
  double threshold_;
};

/// Logistic regression over PairFeaturizer features — the workhorse trained
/// ER/matching model (the paper's Bert-based M_ER stands in behind the same
/// interface).
class LogisticPairClassifier : public PairClassifier {
 public:
  LogisticPairClassifier(int num_attributes, double threshold = 0.5,
                         LogisticRegression::Options options = {})
      : featurizer_(num_attributes),
        model_(options),
        threshold_(threshold) {}

  /// Trains from labeled value-vector pairs.
  Status Train(const std::vector<std::pair<std::vector<Value>,
                                           std::vector<Value>>>& pairs,
               const std::vector<int>& labels);

  double Score(const std::vector<Value>& a,
               const std::vector<Value>& b) const override;
  void ScoreBatch(const PairBatch& batch, BatchScratch* scratch,
                  std::vector<double>* out) const override;
  double threshold() const override { return threshold_; }
  bool trained() const { return model_.trained(); }

 private:
  PairFeaturizer featurizer_;
  LogisticRegression model_;
  double threshold_;
};

/// Gradient-boosted trees over PairFeaturizer features, clamped to [0,1]
/// so the regression output reads as a match strength. The non-linear
/// counterpart of LogisticPairClassifier for pairs whose decision boundary
/// a single hyperplane cannot carve.
class BoostedPairClassifier : public PairClassifier {
 public:
  BoostedPairClassifier(int num_attributes, double threshold = 0.5,
                        GradientBoostedTrees::Options options = {})
      : featurizer_(num_attributes),
        model_(options),
        threshold_(threshold) {}

  /// Trains from labeled value-vector pairs ({0,1} labels).
  Status Train(const std::vector<std::pair<std::vector<Value>,
                                           std::vector<Value>>>& pairs,
               const std::vector<int>& labels);

  double Score(const std::vector<Value>& a,
               const std::vector<Value>& b) const override;
  void ScoreBatch(const PairBatch& batch, BatchScratch* scratch,
                  std::vector<double>* out) const override;
  double threshold() const override { return threshold_; }
  bool trained() const { return model_.trained(); }

 private:
  PairFeaturizer featurizer_;
  GradientBoostedTrees model_;
  double threshold_;
};

class TemporalRanker;
class CorrelationModel;
class ValuePredictor;
class HerModel;
class PathMatchModel;

/// The pre-trained model pool Crystal maintains (paper §5.1 "ML library and
/// REE++s management"). Rules reference models by name; evaluation resolves
/// the name here.
class MlLibrary {
 public:
  void RegisterPair(const std::string& name,
                    std::shared_ptr<PairClassifier> model);
  void RegisterRanker(const std::string& name,
                      std::shared_ptr<TemporalRanker> model);
  void RegisterCorrelation(const std::string& name,
                           std::shared_ptr<CorrelationModel> model);
  void RegisterPredictor(const std::string& name,
                         std::shared_ptr<ValuePredictor> model);
  void RegisterHer(std::shared_ptr<HerModel> model);
  void RegisterPathMatcher(std::shared_ptr<PathMatchModel> model);

  /// nullptr when the name is unknown.
  const PairClassifier* FindPair(const std::string& name) const;
  const TemporalRanker* FindRanker(const std::string& name) const;
  const CorrelationModel* FindCorrelation(const std::string& name) const;
  const ValuePredictor* FindPredictor(const std::string& name) const;
  const HerModel* her() const { return her_.get(); }
  const PathMatchModel* path_matcher() const { return path_matcher_.get(); }

  std::vector<std::string> PairModelNames() const;

 private:
  std::unordered_map<std::string, std::shared_ptr<PairClassifier>> pairs_;
  std::unordered_map<std::string, std::shared_ptr<TemporalRanker>> rankers_;
  std::unordered_map<std::string, std::shared_ptr<CorrelationModel>>
      correlations_;
  std::unordered_map<std::string, std::shared_ptr<ValuePredictor>>
      predictors_;
  std::shared_ptr<HerModel> her_;
  std::shared_ptr<PathMatchModel> path_matcher_;
};

}  // namespace rock::ml

