#include "src/ml/correlation.h"

#include <algorithm>
#include <cmath>

namespace rock::ml {

CooccurrenceModel::CooccurrenceModel() : CooccurrenceModel(Options()) {}

void CooccurrenceModel::Count(int attr_a, const Value& va, int attr_b,
                              const Value& vb, double weight) {
  ValueKey key{attr_a, va.Hash()};
  cooc_[key][attr_b][vb] += weight;
  marginal_[key] += weight;
  attr_totals_[attr_a] += weight;
  attr_values_[attr_b][vb] += weight;
}

void CooccurrenceModel::TrainOnRelation(const Relation& relation) {
  const int num_attrs = static_cast<int>(relation.schema().num_attributes());
  for (size_t row = 0; row < relation.size(); ++row) {
    const Tuple& t = relation.tuple(row);
    for (int a = 0; a < num_attrs; ++a) {
      const Value& va = t.value(a);
      if (va.is_null()) continue;
      for (int b = 0; b < num_attrs; ++b) {
        if (a == b) continue;
        const Value& vb = t.value(b);
        if (vb.is_null()) continue;
        Count(a, va, b, vb, 1.0);
      }
    }
  }
}

void CooccurrenceModel::TrainOnGraph(const kg::KnowledgeGraph& graph,
                                     int subject_attr, int object_attr) {
  for (kg::VertexId v : graph.AllVertices()) {
    for (const auto& [label, target] : graph.OutEdges(v)) {
      Value subject = Value::String(graph.Label(v));
      Value object = Value::String(graph.Label(target));
      Count(subject_attr, subject, object_attr, object, 1.0);
      Count(object_attr, object, subject_attr, subject, 1.0);
    }
  }
}

double CooccurrenceModel::ConditionalScore(int attr_a, const Value& va,
                                           int attr_b,
                                           const Value& vb) const {
  ValueKey key{attr_a, va.Hash()};
  auto it = cooc_.find(key);
  double joint = 0.0;
  double denom = 0.0;
  if (it != cooc_.end()) {
    auto bt = it->second.find(attr_b);
    if (bt != it->second.end()) {
      // The conditional P(vb | va) within attribute B: the denominator is
      // va's co-occurrence mass with B only, not with every attribute.
      for (const auto& [value, count] : bt->second) {
        denom += count;
        if (value == vb) joint = count;
      }
    }
  }
  // Distinct candidate universe for smoothing.
  double universe = 1.0;
  auto ut = attr_values_.find(attr_b);
  if (ut != attr_values_.end()) {
    universe = std::max<double>(1.0, static_cast<double>(ut->second.size()));
  }
  return (joint + options_.smoothing) /
         (denom + options_.smoothing * universe);
}

double CooccurrenceModel::EmbeddingScore(const Value& a,
                                         const Value& b) const {
  FeatureVector ea = text_.ExtractNormalized(a.ToString());
  FeatureVector eb = text_.ExtractNormalized(b.ToString());
  // Cosine in [-1,1] mapped to [0,1].
  return 0.5 * (1.0 + Cosine(ea, eb));
}

double CooccurrenceModel::Strength(const std::vector<Value>& values,
                                   const std::vector<int>& validated_attrs,
                                   int attr_b, const Value& candidate) const {
  if (candidate.is_null()) return 0.0;
  double cond_sum = 0.0;
  double emb_sum = 0.0;
  int counted = 0;
  for (int a : validated_attrs) {
    if (a == attr_b) continue;
    const Value& va = values[static_cast<size_t>(a)];
    if (va.is_null()) continue;
    cond_sum += ConditionalScore(a, va, attr_b, candidate);
    emb_sum += EmbeddingScore(va, candidate);
    ++counted;
  }
  if (counted == 0) return 0.0;
  double cond = cond_sum / counted;
  double emb = emb_sum / counted;
  return options_.cooccurrence_weight * cond +
         (1.0 - options_.cooccurrence_weight) * emb;
}

std::vector<Value> CooccurrenceModel::Candidates(
    const std::vector<Value>& values, const std::vector<int>& validated_attrs,
    int attr_b) const {
  // Retrieve: values of B co-occurring with any validated value of t[A].
  std::map<Value, double> scored;
  for (int a : validated_attrs) {
    if (a == attr_b) continue;
    const Value& va = values[static_cast<size_t>(a)];
    if (va.is_null()) continue;
    ValueKey key{a, va.Hash()};
    auto it = cooc_.find(key);
    if (it == cooc_.end()) continue;
    auto bt = it->second.find(attr_b);
    if (bt == it->second.end()) continue;
    for (const auto& [vb, count] : bt->second) {
      (void)count;
      scored[vb] = std::max(
          scored[vb], Strength(values, validated_attrs, attr_b, vb));
    }
  }
  std::vector<std::pair<double, Value>> ranked;
  ranked.reserve(scored.size());
  for (const auto& [v, s] : scored) ranked.emplace_back(s, v);
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& x, const auto& y) {
              if (x.first != y.first) return x.first > y.first;
              return x.second < y.second;
            });
  std::vector<Value> out;
  out.reserve(ranked.size());
  for (auto& [s, v] : ranked) {
    (void)s;
    out.push_back(std::move(v));
  }
  return out;
}

Result<Value> CooccurrenceModel::PredictValue(
    const std::vector<Value>& values, const std::vector<int>& validated_attrs,
    int attr_b) const {
  std::vector<Value> candidates = Candidates(values, validated_attrs, attr_b);
  if (candidates.empty()) {
    return Status::NotFound("no candidate value for attribute " +
                            std::to_string(attr_b));
  }
  return candidates.front();
}

}  // namespace rock::ml
