#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/storage/value.h"

namespace rock::ml {

struct PairBatch;
class BatchScratch;

/// Dense feature vector used across the classical ML models.
using FeatureVector = std::vector<double>;

/// Features comparing two attribute vectors t[A] and s[B] (pairwise
/// compatible, paper §2.1). Per attribute pair it emits:
///   [exact match, both null, edit sim, jaro-winkler, token jaccard,
///    normalized numeric diff]
/// Non-applicable slots are 0. The layout is fixed so trained weights can
/// be serialized independently of the data.
class PairFeaturizer {
 public:
  /// Number of features per attribute pair.
  static constexpr int kFeaturesPerAttribute = 6;

  explicit PairFeaturizer(int num_attributes)
      : num_attributes_(num_attributes) {}

  int num_attributes() const { return num_attributes_; }
  int dimension() const { return num_attributes_ * kFeaturesPerAttribute; }

  /// Precondition: a.size() == b.size() == num_attributes().
  FeatureVector Extract(const std::vector<Value>& a,
                        const std::vector<Value>& b) const;

  /// Extracts all rows of `batch` into scratch->matrix(), row-major
  /// (batch.size() x dimension()), interning strings through the scratch
  /// so tokenization and string-pair similarities are computed once per
  /// distinct value per round. Every slot is filled by the same kernel
  /// call Extract would make, so each row is bitwise equal to
  /// Extract(batch.a[i], batch.b[i]).
  void ExtractBatch(const PairBatch& batch, BatchScratch* scratch) const;

 private:
  int num_attributes_;
};

/// Hashed character n-gram + token features of a single string, projected
/// into a fixed dimension ("hashing trick"). Stand-in for the paper's
/// text-embedding encoders: strings with shared character structure land on
/// shared buckets.
class HashedTextFeaturizer {
 public:
  explicit HashedTextFeaturizer(int dimension = 256, int ngram = 3)
      : dimension_(dimension), ngram_(ngram) {}

  int dimension() const { return dimension_; }

  FeatureVector Extract(std::string_view text) const;

  /// L2-normalized variant; zero vector stays zero.
  FeatureVector ExtractNormalized(std::string_view text) const;

 private:
  int dimension_;
  int ngram_;
};

/// Cosine similarity of two equal-length vectors; 0 when either is zero.
double Cosine(const FeatureVector& a, const FeatureVector& b);

/// Dot product of two equal-length vectors.
double Dot(const FeatureVector& a, const FeatureVector& b);

}  // namespace rock::ml

