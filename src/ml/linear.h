#pragma once

#include <vector>

#include "src/common/rng.h"
#include "src/ml/feature.h"

namespace rock::ml {

/// Binary logistic regression trained with AdaGrad SGD. Backs most Boolean
/// ML predicates M(t[A], s[B]) embedded in REE++s (paper §2.1): the model
/// returns a probability, and the predicate thresholds it.
class LogisticRegression {
 public:
  struct Options {
    int epochs = 30;
    double learning_rate = 0.5;
    double l2 = 1e-4;
    uint64_t seed = 42;
  };

  LogisticRegression() = default;
  explicit LogisticRegression(Options options) : options_(options) {}

  /// Trains on dense features with {0,1} labels. Resets existing weights.
  void Train(const std::vector<FeatureVector>& features,
             const std::vector<int>& labels);

  /// Probability of the positive class.
  double Score(const FeatureVector& features) const {
    return ScoreRow(features.data(), features.size());
  }

  /// Score over a raw feature row (the batched entry point). Identical
  /// accumulation order to Score, so results are bitwise equal.
  double ScoreRow(const double* row, size_t n) const;

  /// Scores `rows` consecutive rows of the row-major matrix `data`
  /// (`cols` doubles each), appending to *out. Each row goes through
  /// ScoreRow, so outputs match per-row Score bitwise.
  void ScoreBatch(const double* data, size_t rows, size_t cols,
                  std::vector<double>* out) const;

  bool Predict(const FeatureVector& features, double threshold = 0.5) const {
    return Score(features) >= threshold;
  }

  const std::vector<double>& weights() const { return weights_; }
  double bias() const { return bias_; }
  bool trained() const { return !weights_.empty(); }

 private:
  Options options_;
  std::vector<double> weights_;
  double bias_ = 0.0;
};

/// LASSO linear regression via cyclic coordinate descent. Used by the
/// polynomial-expression discovery of §5.4: unimportant features receive
/// exactly-zero weights.
class Lasso {
 public:
  struct Options {
    double lambda = 0.1;
    int max_iters = 200;
    double tolerance = 1e-7;
  };

  Lasso() = default;
  explicit Lasso(Options options) : options_(options) {}

  /// Fits y ≈ X·w + b with an L1 penalty on w.
  void Train(const std::vector<FeatureVector>& x, const std::vector<double>& y);

  double Predict(const FeatureVector& features) const;

  const std::vector<double>& weights() const { return weights_; }
  double bias() const { return bias_; }

  /// Indices of features with non-zero weight (|w| > 1e-9).
  std::vector<int> SelectedFeatures() const;

 private:
  Options options_;
  std::vector<double> weights_;
  double bias_ = 0.0;
};

}  // namespace rock::ml

