#include "src/ml/linear.h"

#include <algorithm>
#include <cmath>

namespace rock::ml {
namespace {

double Sigmoid(double z) {
  if (z >= 0) {
    double e = std::exp(-z);
    return 1.0 / (1.0 + e);
  }
  double e = std::exp(z);
  return e / (1.0 + e);
}

}  // namespace

void LogisticRegression::Train(const std::vector<FeatureVector>& features,
                               const std::vector<int>& labels) {
  if (features.empty()) {
    weights_.clear();
    bias_ = 0.0;
    return;
  }
  const size_t dim = features[0].size();
  weights_.assign(dim, 0.0);
  bias_ = 0.0;
  std::vector<double> grad_sq(dim + 1, 1e-8);

  Rng rng(options_.seed);
  std::vector<size_t> order(features.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    rng.Shuffle(order);
    for (size_t idx : order) {
      const FeatureVector& x = features[idx];
      double y = labels[idx] > 0 ? 1.0 : 0.0;
      double p = Score(x);
      double err = p - y;
      for (size_t j = 0; j < dim; ++j) {
        if (x[j] == 0.0 && weights_[j] == 0.0) continue;
        double g = err * x[j] + options_.l2 * weights_[j];
        grad_sq[j] += g * g;
        weights_[j] -= options_.learning_rate * g / std::sqrt(grad_sq[j]);
      }
      double gb = err;
      grad_sq[dim] += gb * gb;
      bias_ -= options_.learning_rate * gb / std::sqrt(grad_sq[dim]);
    }
  }
}

double LogisticRegression::ScoreRow(const double* row, size_t n) const {
  double z = bias_;
  const size_t dim = std::min(n, weights_.size());
  for (size_t i = 0; i < dim; ++i) z += weights_[i] * row[i];
  return Sigmoid(z);
}

void LogisticRegression::ScoreBatch(const double* data, size_t rows,
                                    size_t cols,
                                    std::vector<double>* out) const {
  out->reserve(out->size() + rows);
  for (size_t r = 0; r < rows; ++r) {
    out->push_back(ScoreRow(data + r * cols, cols));
  }
}

void Lasso::Train(const std::vector<FeatureVector>& x,
                  const std::vector<double>& y) {
  weights_.clear();
  bias_ = 0.0;
  if (x.empty()) return;
  const size_t n = x.size();
  const size_t dim = x[0].size();
  weights_.assign(dim, 0.0);

  // Center both the target and every column so the intercept co-adapts
  // (the standard LASSO parameterization); the bias is recovered at the
  // end as ȳ - w·x̄.
  double y_mean = 0.0;
  for (double v : y) y_mean += v;
  y_mean /= static_cast<double>(n);
  std::vector<double> col_mean(dim, 0.0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < dim; ++j) col_mean[j] += x[i][j];
  }
  for (size_t j = 0; j < dim; ++j) col_mean[j] /= static_cast<double>(n);

  // Centered column norms.
  std::vector<double> col_sq(dim, 0.0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < dim; ++j) {
      double c = x[i][j] - col_mean[j];
      col_sq[j] += c * c;
    }
  }

  // Residuals r_i = (y_i - ȳ) - Σ w_j (x_ij - x̄_j); w starts at 0.
  std::vector<double> residual(n);
  for (size_t i = 0; i < n; ++i) residual[i] = y[i] - y_mean;

  for (int iter = 0; iter < options_.max_iters; ++iter) {
    double max_change = 0.0;
    for (size_t j = 0; j < dim; ++j) {
      if (col_sq[j] <= 1e-30) continue;
      // rho = x_j_centered . (r + w_j x_j_centered)
      double rho = 0.0;
      for (size_t i = 0; i < n; ++i) {
        double c = x[i][j] - col_mean[j];
        rho += c * (residual[i] + weights_[j] * c);
      }
      double lambda_n = options_.lambda * static_cast<double>(n);
      double w_new;
      if (rho > lambda_n) {
        w_new = (rho - lambda_n) / col_sq[j];
      } else if (rho < -lambda_n) {
        w_new = (rho + lambda_n) / col_sq[j];
      } else {
        w_new = 0.0;
      }
      double delta = w_new - weights_[j];
      if (delta != 0.0) {
        for (size_t i = 0; i < n; ++i) {
          residual[i] -= delta * (x[i][j] - col_mean[j]);
        }
        weights_[j] = w_new;
      }
      max_change = std::max(max_change, std::abs(delta));
    }
    if (max_change < options_.tolerance) break;
  }
  bias_ = y_mean;
  for (size_t j = 0; j < dim; ++j) bias_ -= weights_[j] * col_mean[j];
}

double Lasso::Predict(const FeatureVector& features) const {
  double out = bias_;
  size_t n = std::min(features.size(), weights_.size());
  for (size_t i = 0; i < n; ++i) out += weights_[i] * features[i];
  return out;
}

std::vector<int> Lasso::SelectedFeatures() const {
  std::vector<int> out;
  for (size_t i = 0; i < weights_.size(); ++i) {
    if (std::abs(weights_[i]) > 1e-9) out.push_back(static_cast<int>(i));
  }
  return out;
}

}  // namespace rock::ml
