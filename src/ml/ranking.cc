#include "src/ml/ranking.h"

#include <algorithm>
#include <cmath>
#include <set>

namespace rock::ml {
namespace {

bool IsNumeric(ValueType t) {
  return t == ValueType::kInt || t == ValueType::kDouble ||
         t == ValueType::kTime;
}

}  // namespace

RankingModel::RankingModel(const Schema& schema, int attr)
    : RankingModel(schema, attr, Options()) {}

RankingModel::RankingModel(const Schema& schema, int attr, Options options)
    : schema_(schema),
      attr_(attr),
      options_(options),
      text_(options.text_dim),
      pair_model_(options.logistic) {}

FeatureVector RankingModel::TupleFeatures(const Tuple& t) const {
  FeatureVector out;
  // Numeric attributes, squashed so scales are comparable.
  for (size_t a = 0; a < schema_.num_attributes(); ++a) {
    if (!IsNumeric(schema_.AttributeType(static_cast<int>(a)))) continue;
    const Value& v = t.values[a];
    double x = v.is_null() ? 0.0
               : (v.type() == ValueType::kTime
                      ? static_cast<double>(v.AsTime())
                      : v.AsDouble());
    // Signed log squash keeps huge sales/timestamps in range.
    out.push_back(std::copysign(std::log1p(std::abs(x)), x));
    out.push_back(v.is_null() ? 1.0 : 0.0);
  }
  // Timestamp of the ranked attribute, when defined.
  int64_t ts = t.timestamp(attr_);
  out.push_back(ts == kNoTimestamp
                    ? 0.0
                    : std::copysign(std::log1p(std::abs(
                                        static_cast<double>(ts))),
                                    static_cast<double>(ts)));
  out.push_back(ts == kNoTimestamp ? 1.0 : 0.0);
  // Hashed text embedding of the ranked attribute's value: "arranging
  // values chronologically by their distances to a target in the embedding
  // space" — the linear weights over these buckets learn that target.
  const Value& v = t.values[static_cast<size_t>(attr_)];
  FeatureVector emb = text_.ExtractNormalized(v.is_null() ? "" : v.ToString());
  out.insert(out.end(), emb.begin(), emb.end());
  return out;
}

FeatureVector RankingModel::PairFeatures(const Tuple& t1,
                                         const Tuple& t2) const {
  FeatureVector a = TupleFeatures(t1);
  FeatureVector b = TupleFeatures(t2);
  for (size_t i = 0; i < a.size(); ++i) a[i] = b[i] - a[i];
  return a;
}

void RankingModel::Train(
    const std::vector<std::pair<Tuple, Tuple>>& ordered_pairs) {
  std::vector<FeatureVector> features;
  std::vector<int> labels;
  features.reserve(ordered_pairs.size() * 2);
  for (const auto& [earlier, later] : ordered_pairs) {
    features.push_back(PairFeatures(earlier, later));
    labels.push_back(1);
    features.push_back(PairFeatures(later, earlier));
    labels.push_back(0);
  }
  pair_model_.Train(features, labels);
}

void RankingModel::TrainCreatorCritic(
    const Relation& relation,
    const std::vector<CurrencyConstraint>& constraints,
    const std::vector<std::pair<Tuple, Tuple>>& seed_pairs) {
  // Candidate pool: all tuple pairs, strided down to a workable size.
  const size_t n = relation.size();
  std::vector<std::pair<int, int>> candidates;
  const size_t kMaxCandidates = 4000;
  size_t total = n * (n - 1) / 2;
  size_t stride = std::max<size_t>(1, total / kMaxCandidates);
  size_t counter = 0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      if (counter++ % stride == 0) {
        candidates.emplace_back(static_cast<int>(i), static_cast<int>(j));
      }
    }
  }

  // Critic pass 0: constraint-certified orders are ground truth.
  std::vector<std::pair<Tuple, Tuple>> accepted = seed_pairs;
  std::set<std::pair<int, int>> accepted_idx;  // (earlier_row, later_row)
  std::vector<std::pair<int, int>> unlabeled;
  for (const auto& [i, j] : candidates) {
    const Tuple& ti = relation.tuple(static_cast<size_t>(i));
    const Tuple& tj = relation.tuple(static_cast<size_t>(j));
    int verdict = 0;
    for (const CurrencyConstraint& c : constraints) {
      int v = c.judge(schema_, ti, tj, attr_);
      if (v != 0) {
        verdict = v;
        break;
      }
    }
    if (verdict > 0) {
      accepted.emplace_back(ti, tj);
      accepted_idx.emplace(i, j);
    } else if (verdict < 0) {
      accepted.emplace_back(tj, ti);
      accepted_idx.emplace(j, i);
    } else {
      unlabeled.emplace_back(i, j);
    }
  }

  for (int round = 0; round < options_.rounds; ++round) {
    if (accepted.empty()) break;
    Train(accepted);
    // Creator: propose orders on unlabeled pairs; critic keeps only
    // confident proposals that do not contradict accepted orders.
    std::vector<std::pair<int, int>> still_unlabeled;
    for (const auto& [i, j] : unlabeled) {
      const Tuple& ti = relation.tuple(static_cast<size_t>(i));
      const Tuple& tj = relation.tuple(static_cast<size_t>(j));
      double conf = Confidence(ti, tj, attr_, /*strict=*/false);
      int earlier = -1, later = -1;
      if (conf > 0.9) {
        earlier = i;
        later = j;
      } else if (conf < 0.1) {
        earlier = j;
        later = i;
      }
      if (earlier < 0) {
        still_unlabeled.emplace_back(i, j);
        continue;
      }
      if (accepted_idx.count({later, earlier})) {
        // Contradicts a certified order: the critic rejects it.
        still_unlabeled.emplace_back(i, j);
        continue;
      }
      accepted.emplace_back(relation.tuple(static_cast<size_t>(earlier)),
                            relation.tuple(static_cast<size_t>(later)));
      accepted_idx.emplace(earlier, later);
    }
    unlabeled = std::move(still_unlabeled);
  }
  if (!accepted.empty()) Train(accepted);
}

double RankingModel::Confidence(const Tuple& t1, const Tuple& t2, int attr,
                                bool strict) const {
  // Timestamps, when both defined, decide outright (paper §2.2: a later
  // confirmation timestamp implies at-least-as-current).
  int64_t ts1 = t1.timestamp(attr);
  int64_t ts2 = t2.timestamp(attr);
  if (ts1 != kNoTimestamp && ts2 != kNoTimestamp) {
    if (strict) return ts1 < ts2 ? 1.0 : 0.0;
    return ts1 <= ts2 ? 1.0 : 0.0;
  }
  const Value& v1 = t1.values[static_cast<size_t>(attr)];
  const Value& v2 = t2.values[static_cast<size_t>(attr)];
  if (strict && !v1.is_null() && v1 == v2) return 0.0;
  if (!pair_model_.trained()) return 0.5;
  return pair_model_.Score(PairFeatures(t1, t2));
}

double RankingModel::RecencyScore(const Tuple& t) const {
  if (!pair_model_.trained()) return 0.0;
  FeatureVector f = TupleFeatures(t);
  double z = 0.0;
  const std::vector<double>& w = pair_model_.weights();
  for (size_t i = 0; i < std::min(f.size(), w.size()); ++i) z += w[i] * f[i];
  return z;
}

}  // namespace rock::ml
