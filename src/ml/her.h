#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/kg/graph.h"
#include "src/ml/feature.h"
#include "src/ml/lsh.h"
#include "src/storage/relation.h"
#include "src/storage/schema.h"

namespace rock::ml {

/// Heterogeneous entity resolution HER(t, x) (paper §2.3, after [31]):
/// decides whether relational tuple t and knowledge-graph vertex x refer to
/// the same entity. The paper uses parametric simulation; this model scores
/// a tuple against a vertex by (a) similarity between the tuple's key
/// attribute values and the vertex label, and (b) overlap between the
/// tuple's remaining values and the labels of the vertex's graph
/// neighbourhood — a light-weight stand-in with the same interface.
class HerModel {
 public:
  struct Options {
    /// Attribute indices whose values name the entity (e.g. "name"); when
    /// empty, all string attributes participate.
    std::vector<int> key_attrs;
    double threshold = 0.7;
    /// Relative weight of the key-vs-label component.
    double key_weight = 0.7;
  };

  HerModel();
  explicit HerModel(Options options) : options_(options) {}

  /// Builds the candidate index over the graph's vertex labels.
  void IndexGraph(const kg::KnowledgeGraph& graph);

  /// Match score in [0,1] between tuple values and vertex `x`.
  double Score(const std::vector<Value>& values, const Schema& schema,
               const kg::KnowledgeGraph& graph, kg::VertexId x) const;

  bool Match(const std::vector<Value>& values, const Schema& schema,
             const kg::KnowledgeGraph& graph, kg::VertexId x) const {
    return Score(values, schema, graph, x) >= options_.threshold;
  }

  /// Candidate vertices for a tuple (LSH blocking over vertex labels);
  /// callers verify with Match(). Requires IndexGraph() first.
  std::vector<kg::VertexId> Candidates(const std::vector<Value>& values,
                                       const Schema& schema) const;

  double threshold() const { return options_.threshold; }

 private:
  Options options_;
  LshBlocker blocker_;
  bool indexed_ = false;

  std::vector<int> EffectiveKeyAttrs(const Schema& schema) const;
};

/// match(t.A, x.ρ) (paper §2.3): does label path ρ encode attribute A?
/// The paper implements this with an LSTM [31]; the stand-in scores the
/// attribute name against the path's label sequence with a character
/// n-gram embedding, plus an exact synonym table that can be trained from
/// (attribute, path) examples.
class PathMatchModel {
 public:
  explicit PathMatchModel(double threshold = 0.55)
      : threshold_(threshold), text_(128) {}

  /// Registers a known correspondence, e.g. ("location", {"LocationAt"}).
  void AddSynonym(const std::string& attr_name,
                  const std::vector<std::string>& path);

  /// Score in [0,1] that `path` encodes attribute `attr_name`.
  double Score(const std::string& attr_name,
               const std::vector<std::string>& path) const;

  bool Matches(const std::string& attr_name,
               const std::vector<std::string>& path) const {
    return Score(attr_name, path) >= threshold_;
  }

 private:
  double threshold_;
  HashedTextFeaturizer text_;
  std::unordered_map<std::string, std::vector<std::vector<std::string>>>
      synonyms_;

  static std::string PathText(const std::vector<std::string>& path);
};

}  // namespace rock::ml

