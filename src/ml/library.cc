#include "src/ml/library.h"

#include <algorithm>

#include "src/common/strings.h"
#include "src/ml/lsh.h"

namespace rock::ml {

std::vector<std::string> PairClassifier::BlockTokens(
    const std::vector<Value>& a) const {
  return BlockingTokens(a);
}

void PairClassifier::ScoreBatch(const PairBatch& batch,
                                BatchScratch* /*scratch*/,
                                std::vector<double>* out) const {
  out->clear();
  out->reserve(batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    out->push_back(Score(batch.a[i], batch.b[i]));
  }
}

double SimilarityClassifier::Score(const std::vector<Value>& a,
                                   const std::vector<Value>& b) const {
  size_t n = std::min(a.size(), b.size());
  if (n == 0) return 0.0;
  double total = 0.0;
  size_t counted = 0;
  for (size_t i = 0; i < n; ++i) {
    const Value& va = a[i];
    const Value& vb = b[i];
    if (va.is_null() || vb.is_null()) continue;
    ++counted;
    if (va.type() == ValueType::kString && vb.type() == ValueType::kString) {
      total += 0.5 * JaroWinkler(va.AsString(), vb.AsString()) +
               0.5 * SoftTokenSimilarity(va.AsString(), vb.AsString());
    } else if (va.ComparableWith(vb)) {
      double x = va.AsDouble();
      double y = vb.AsDouble();
      double denom = std::max({std::abs(x), std::abs(y), 1.0});
      total += 1.0 - std::min(1.0, std::abs(x - y) / denom);
    } else {
      total += (va == vb) ? 1.0 : 0.0;
    }
  }
  return counted == 0 ? 0.0 : total / static_cast<double>(counted);
}

void SimilarityClassifier::ScoreBatch(const PairBatch& batch,
                                      BatchScratch* scratch,
                                      std::vector<double>* out) const {
  if (scratch == nullptr) {
    PairClassifier::ScoreBatch(batch, nullptr, out);
    return;
  }
  out->clear();
  out->reserve(batch.size());
  for (size_t row = 0; row < batch.size(); ++row) {
    const std::vector<Value>& a = batch.a[row];
    const std::vector<Value>& b = batch.b[row];
    const size_t n = std::min(a.size(), b.size());
    if (n == 0) {
      out->push_back(0.0);
      continue;
    }
    // Mirrors Score attr by attr; string similarities go through the
    // per-round memo so repeated values are computed once. The summation
    // order and per-attr expression are identical to Score, keeping the
    // result bitwise equal.
    double total = 0.0;
    size_t counted = 0;
    for (size_t i = 0; i < n; ++i) {
      const Value& va = a[i];
      const Value& vb = b[i];
      if (va.is_null() || vb.is_null()) continue;
      ++counted;
      if (va.type() == ValueType::kString &&
          vb.type() == ValueType::kString) {
        const std::string& sa = va.AsString();
        const std::string& sb = vb.AsString();
        const uint32_t ida = scratch->InternString(sa);
        const uint32_t idb = scratch->InternString(sb);
        BatchScratch::SimEntry& memo = scratch->SimFor(ida, idb);
        if ((memo.have & BatchScratch::kJaroWinkler) == 0) {
          memo.jaro_winkler = JaroWinkler(sa, sb);
          memo.have |= BatchScratch::kJaroWinkler;
        }
        if ((memo.have & BatchScratch::kSoftToken) == 0) {
          memo.soft_token = SoftTokenSimilarityTokens(scratch->RawTokens(ida),
                                                      scratch->RawTokens(idb));
          memo.have |= BatchScratch::kSoftToken;
        }
        total += 0.5 * memo.jaro_winkler + 0.5 * memo.soft_token;
      } else if (va.ComparableWith(vb)) {
        double x = va.AsDouble();
        double y = vb.AsDouble();
        double denom = std::max({std::abs(x), std::abs(y), 1.0});
        total += 1.0 - std::min(1.0, std::abs(x - y) / denom);
      } else {
        total += (va == vb) ? 1.0 : 0.0;
      }
    }
    out->push_back(counted == 0 ? 0.0
                                : total / static_cast<double>(counted));
  }
}

Status LogisticPairClassifier::Train(
    const std::vector<std::pair<std::vector<Value>, std::vector<Value>>>&
        pairs,
    const std::vector<int>& labels) {
  if (pairs.size() != labels.size()) {
    return Status::InvalidArgument("pairs/labels size mismatch");
  }
  if (pairs.empty()) {
    return Status::InvalidArgument("no training pairs");
  }
  std::vector<FeatureVector> features;
  features.reserve(pairs.size());
  for (const auto& [a, b] : pairs) {
    if (static_cast<int>(a.size()) != featurizer_.num_attributes() ||
        static_cast<int>(b.size()) != featurizer_.num_attributes()) {
      return Status::InvalidArgument("attribute vector arity mismatch");
    }
    features.push_back(featurizer_.Extract(a, b));
  }
  model_.Train(features, labels);
  return Status::Ok();
}

double LogisticPairClassifier::Score(const std::vector<Value>& a,
                                     const std::vector<Value>& b) const {
  return model_.Score(featurizer_.Extract(a, b));
}

void LogisticPairClassifier::ScoreBatch(const PairBatch& batch,
                                        BatchScratch* scratch,
                                        std::vector<double>* out) const {
  if (scratch == nullptr) {
    PairClassifier::ScoreBatch(batch, nullptr, out);
    return;
  }
  featurizer_.ExtractBatch(batch, scratch);
  out->clear();
  model_.ScoreBatch(scratch->matrix().data(), batch.size(),
                    static_cast<size_t>(featurizer_.dimension()), out);
}

Status BoostedPairClassifier::Train(
    const std::vector<std::pair<std::vector<Value>, std::vector<Value>>>&
        pairs,
    const std::vector<int>& labels) {
  if (pairs.size() != labels.size()) {
    return Status::InvalidArgument("pairs/labels size mismatch");
  }
  if (pairs.empty()) {
    return Status::InvalidArgument("no training pairs");
  }
  std::vector<FeatureVector> features;
  features.reserve(pairs.size());
  for (const auto& [a, b] : pairs) {
    if (static_cast<int>(a.size()) != featurizer_.num_attributes() ||
        static_cast<int>(b.size()) != featurizer_.num_attributes()) {
      return Status::InvalidArgument("attribute vector arity mismatch");
    }
    features.push_back(featurizer_.Extract(a, b));
  }
  std::vector<double> targets(labels.begin(), labels.end());
  model_.Train(features, targets);
  return Status::Ok();
}

double BoostedPairClassifier::Score(const std::vector<Value>& a,
                                    const std::vector<Value>& b) const {
  const FeatureVector features = featurizer_.Extract(a, b);
  return std::clamp(model_.PredictRow(features.data()), 0.0, 1.0);
}

void BoostedPairClassifier::ScoreBatch(const PairBatch& batch,
                                       BatchScratch* scratch,
                                       std::vector<double>* out) const {
  if (scratch == nullptr) {
    PairClassifier::ScoreBatch(batch, nullptr, out);
    return;
  }
  featurizer_.ExtractBatch(batch, scratch);
  out->clear();
  model_.PredictBatch(scratch->matrix().data(), batch.size(),
                      static_cast<size_t>(featurizer_.dimension()), out);
  for (double& score : *out) score = std::clamp(score, 0.0, 1.0);
}

void MlLibrary::RegisterPair(const std::string& name,
                             std::shared_ptr<PairClassifier> model) {
  pairs_[name] = std::move(model);
}
void MlLibrary::RegisterRanker(const std::string& name,
                               std::shared_ptr<TemporalRanker> model) {
  rankers_[name] = std::move(model);
}
void MlLibrary::RegisterCorrelation(const std::string& name,
                                    std::shared_ptr<CorrelationModel> model) {
  correlations_[name] = std::move(model);
}
void MlLibrary::RegisterPredictor(const std::string& name,
                                  std::shared_ptr<ValuePredictor> model) {
  predictors_[name] = std::move(model);
}
void MlLibrary::RegisterHer(std::shared_ptr<HerModel> model) {
  her_ = std::move(model);
}
void MlLibrary::RegisterPathMatcher(std::shared_ptr<PathMatchModel> model) {
  path_matcher_ = std::move(model);
}

const PairClassifier* MlLibrary::FindPair(const std::string& name) const {
  auto it = pairs_.find(name);
  return it == pairs_.end() ? nullptr : it->second.get();
}
const TemporalRanker* MlLibrary::FindRanker(const std::string& name) const {
  auto it = rankers_.find(name);
  return it == rankers_.end() ? nullptr : it->second.get();
}
const CorrelationModel* MlLibrary::FindCorrelation(
    const std::string& name) const {
  auto it = correlations_.find(name);
  return it == correlations_.end() ? nullptr : it->second.get();
}
const ValuePredictor* MlLibrary::FindPredictor(const std::string& name) const {
  auto it = predictors_.find(name);
  return it == predictors_.end() ? nullptr : it->second.get();
}

std::vector<std::string> MlLibrary::PairModelNames() const {
  std::vector<std::string> out;
  out.reserve(pairs_.size());
  for (const auto& [name, model] : pairs_) out.push_back(name);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace rock::ml
