#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/thread_annotations.h"
#include "src/storage/dictionary.h"
#include "src/storage/value.h"

namespace rock::ml {

/// A batch of candidate tuple pairs destined for one classifier: two
/// parallel arrays of attribute-value vectors. Rows are scored in index
/// order, so the i-th output corresponds to (a[i], b[i]).
struct PairBatch {
  std::vector<std::vector<Value>> a;
  std::vector<std::vector<Value>> b;

  void Add(std::vector<Value> va, std::vector<Value> vb) {
    a.push_back(std::move(va));
    b.push_back(std::move(vb));
  }
  size_t size() const { return a.size(); }
  bool empty() const { return a.empty(); }
  void Clear() {
    a.clear();
    b.clear();
  }
};

/// Per-round scratch arena for batched feature extraction. Strings are
/// interned to dense ids (storage::StringInterner); tokenizations and
/// string-pair similarities are memoized per id so a value that appears in
/// many candidate pairs — the common case under blocking — is tokenized
/// once per round instead of once per pair. The memo stores the exact
/// doubles the scalar kernels produce, so reuse is bitwise neutral.
///
/// Not thread-safe: each worker owns one scratch and Reset()s it between
/// rounds (buffers keep their capacity across resets).
class BatchScratch {
 public:
  // Bits of SimEntry::have.
  static constexpr uint8_t kEdit = 1;
  static constexpr uint8_t kJaroWinkler = 2;
  static constexpr uint8_t kJaccard = 4;
  static constexpr uint8_t kSoftToken = 8;

  struct SimEntry {
    double edit = 0.0;
    double jaro_winkler = 0.0;
    double jaccard = 0.0;
    double soft_token = 0.0;
    uint8_t have = 0;
  };

  /// Dense id for `s`; stable until Reset().
  uint32_t InternString(std::string_view s);

  /// Tokenize(s) for the interned string, computed once per id.
  const std::vector<std::string>& RawTokens(uint32_t id);

  /// SortedUniqueTokens(s) for the interned string, computed once per id.
  const std::vector<std::string>& SortedTokens(uint32_t id);

  /// Memo slot for the ordered string-id pair (a, b). Callers check `have`
  /// bits and fill what they compute.
  SimEntry& SimFor(uint32_t a, uint32_t b);

  /// Row-major feature/score buffer reused across batches.
  std::vector<double>& matrix() { return matrix_; }

  /// Drops interned strings, token caches and similarity memos. Keeps
  /// heap capacity where the containers allow it.
  void Reset();

  size_t num_interned() const { return interner_.size(); }

  /// Rough heap footprint of the scratch (interner payloads, token memos,
  /// similarity memo, feature matrix). Cross-check for the allocation-delta
  /// columns; exported as the rock_interner_bytes gauge.
  size_t ApproxBytes() const;

 private:
  struct TokenEntry {
    std::vector<std::string> raw;
    std::vector<std::string> sorted;
    bool raw_ready = false;
    bool sorted_ready = false;
  };

  StringInterner interner_;
  std::vector<TokenEntry> tokens_;
  std::unordered_map<uint64_t, SimEntry> sims_;
  std::vector<double> matrix_;
};

/// Sharded, double-checked memo of ML predicate scores keyed by
/// (model, pair-content) hash — the batched-evaluation counterpart of the
/// detector's pair-frequency cache, and managed under the same discipline:
/// look up under the shard lock, compute outside any lock, first insert
/// wins. Keys hash the *values* of both attribute vectors, so a hit returns
/// the score of a bitwise-identical pair regardless of which rule, worker
/// or overlay produced it, and the cached double is exactly what the scalar
/// path would recompute.
///
/// Keys are 128-bit (two independently seeded 64-bit mixes), making
/// accidental collisions negligible at any realistic pair count.
class MlScoreCache {
 public:
  struct Key {
    uint64_t hi = 0;
    uint64_t lo = 0;
    bool operator==(const Key& o) const { return hi == o.hi && lo == o.lo; }
  };

  /// Hash functor for Key, usable by callers that keep key sets (e.g. the
  /// warm pass deduplicating pairs before a batch score).
  struct KeyHash {
    size_t operator()(const Key& k) const {
      return static_cast<size_t>(k.hi ^ (k.lo * 0x9E3779B97F4A7C15ull));
    }
  };

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t inserts = 0;
  };

  MlScoreCache() = default;
  MlScoreCache(const MlScoreCache&) = delete;
  MlScoreCache& operator=(const MlScoreCache&) = delete;

  /// Content hash of (model name, a-values, b-values).
  static Key MakeKey(std::string_view model_name, const std::vector<Value>& a,
                     const std::vector<Value>& b);

  /// True and sets *score on a hit. Counts a hit or miss either way.
  bool Lookup(const Key& key, double* score) const;

  /// Membership probe that does not touch the hit/miss stats — for warm
  /// passes deciding what still needs scoring.
  bool Contains(const Key& key) const;

  /// First insert wins; later inserts of the same key are ignored.
  void Insert(const Key& key, double score);

  /// Inserts keys[i] -> scores[i], grouping by shard to take each shard
  /// lock once. Preconditions: keys.size() == scores.size().
  void InsertBatch(const std::vector<Key>& keys,
                   const std::vector<double>& scores);

  void Clear();
  size_t size() const;
  Stats GetStats() const;

  /// Rough heap footprint across shards (entries plus bucket arrays).
  /// Exported as the rock_detect_ml_cache_bytes gauge.
  size_t ApproxBytes() const;

 private:
  struct Shard {
    mutable common::Mutex mu;
    std::unordered_map<Key, double, KeyHash> scores ROCK_GUARDED_BY(mu);
  };

  static constexpr size_t kNumShards = 16;
  static size_t ShardOf(const Key& key) { return key.hi % kNumShards; }

  Shard shards_[kNumShards];
  mutable std::atomic<uint64_t> hits_{0};
  mutable std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> inserts_{0};
};

}  // namespace rock::ml
