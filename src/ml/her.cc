#include "src/ml/her.h"

#include <algorithm>

#include "src/common/strings.h"

namespace rock::ml {

HerModel::HerModel() : HerModel(Options()) {}

std::vector<int> HerModel::EffectiveKeyAttrs(const Schema& schema) const {
  if (!options_.key_attrs.empty()) return options_.key_attrs;
  std::vector<int> out;
  for (size_t a = 0; a < schema.num_attributes(); ++a) {
    if (schema.AttributeType(static_cast<int>(a)) == ValueType::kString) {
      out.push_back(static_cast<int>(a));
    }
  }
  return out;
}

void HerModel::IndexGraph(const kg::KnowledgeGraph& graph) {
  blocker_ = LshBlocker();
  for (kg::VertexId v : graph.AllVertices()) {
    blocker_.Add(v, Tokenize(graph.Label(v)));
  }
  indexed_ = true;
}

double HerModel::Score(const std::vector<Value>& values, const Schema& schema,
                       const kg::KnowledgeGraph& graph,
                       kg::VertexId x) const {
  if (!graph.HasVertex(x)) return 0.0;
  const std::string& label = graph.Label(x);

  // Key component: best similarity between a key attribute and the label.
  double key_score = 0.0;
  for (int a : EffectiveKeyAttrs(schema)) {
    const Value& v = values[static_cast<size_t>(a)];
    if (v.is_null()) continue;
    std::string text = v.ToString();
    double sim = 0.5 * JaroWinkler(text, label) +
                 0.5 * TokenJaccard(text, label);
    key_score = std::max(key_score, sim);
  }

  // Context component: how many non-key values reappear among the labels of
  // the vertex's 1-hop neighbourhood.
  std::vector<std::string> neighbour_labels;
  for (const auto& [edge_label, target] : graph.OutEdges(x)) {
    (void)edge_label;
    neighbour_labels.push_back(graph.Label(target));
  }
  double context_score = 0.0;
  int counted = 0;
  for (size_t a = 0; a < values.size(); ++a) {
    const Value& v = values[a];
    if (v.is_null()) continue;
    std::string text = v.ToString();
    double best = 0.0;
    for (const std::string& nl : neighbour_labels) {
      best = std::max(best, TokenJaccard(text, nl) > 0.99
                                ? 1.0
                                : JaroWinkler(text, nl));
    }
    context_score += best;
    ++counted;
  }
  if (counted > 0) context_score /= counted;

  return options_.key_weight * key_score +
         (1.0 - options_.key_weight) * context_score;
}

std::vector<kg::VertexId> HerModel::Candidates(
    const std::vector<Value>& values, const Schema& schema) const {
  if (!indexed_) return {};
  // Query the blocking index once per key attribute: a vertex label that
  // matches one attribute well would be drowned out by the union of every
  // attribute's tokens.
  std::vector<kg::VertexId> out;
  for (int a : EffectiveKeyAttrs(schema)) {
    const Value& v = values[static_cast<size_t>(a)];
    if (v.is_null()) continue;
    for (int64_t id : blocker_.Candidates(Tokenize(v.ToString()))) {
      out.push_back(id);
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

void PathMatchModel::AddSynonym(const std::string& attr_name,
                                const std::vector<std::string>& path) {
  synonyms_[ToLower(attr_name)].push_back(path);
}

std::string PathMatchModel::PathText(const std::vector<std::string>& path) {
  return Join(path, " ");
}

double PathMatchModel::Score(const std::string& attr_name,
                             const std::vector<std::string>& path) const {
  auto it = synonyms_.find(ToLower(attr_name));
  if (it != synonyms_.end()) {
    for (const auto& known : it->second) {
      if (known == path) return 1.0;
    }
  }
  FeatureVector ea = text_.ExtractNormalized(attr_name);
  FeatureVector ep = text_.ExtractNormalized(PathText(path));
  double cos = Cosine(ea, ep);
  return std::max(0.0, cos);
}

}  // namespace rock::ml
