#include "src/ml/batch.h"

#include <algorithm>
#include <utility>

#include "src/common/hash.h"
#include "src/common/strings.h"

namespace rock::ml {

uint32_t BatchScratch::InternString(std::string_view s) {
  const uint32_t id = interner_.Intern(s);
  if (id >= tokens_.size()) tokens_.resize(id + 1);
  return id;
}

const std::vector<std::string>& BatchScratch::RawTokens(uint32_t id) {
  TokenEntry& entry = tokens_[id];
  if (!entry.raw_ready) {
    entry.raw = Tokenize(interner_.Lookup(id));
    entry.raw_ready = true;
  }
  return entry.raw;
}

const std::vector<std::string>& BatchScratch::SortedTokens(uint32_t id) {
  TokenEntry& entry = tokens_[id];
  if (!entry.sorted_ready) {
    entry.sorted = SortedUniqueTokens(interner_.Lookup(id));
    entry.sorted_ready = true;
  }
  return entry.sorted;
}

BatchScratch::SimEntry& BatchScratch::SimFor(uint32_t a, uint32_t b) {
  const uint64_t key = (static_cast<uint64_t>(a) << 32) | b;
  return sims_[key];
}

void BatchScratch::Reset() {
  interner_.Clear();
  tokens_.clear();
  sims_.clear();
}

size_t BatchScratch::ApproxBytes() const {
  size_t bytes = interner_.ApproxBytes();
  bytes += tokens_.capacity() * sizeof(TokenEntry);
  for (const TokenEntry& entry : tokens_) {
    bytes += (entry.raw.capacity() + entry.sorted.capacity()) *
             sizeof(std::string);
    for (const std::string& t : entry.raw) bytes += t.capacity();
    for (const std::string& t : entry.sorted) bytes += t.capacity();
  }
  // unordered_map: one node (key + value + next pointer) per entry plus
  // the bucket array.
  bytes += sims_.size() * (sizeof(uint64_t) + sizeof(SimEntry) +
                           sizeof(void*)) +
           sims_.bucket_count() * sizeof(void*);
  bytes += matrix_.capacity() * sizeof(double);
  return bytes;
}

MlScoreCache::Key MlScoreCache::MakeKey(std::string_view model_name,
                                        const std::vector<Value>& a,
                                        const std::vector<Value>& b) {
  // Two independently seeded chains over the same content; both must
  // collide for a wrong hit.
  uint64_t hi = Hash64(model_name);
  uint64_t lo = MixHash64(hi ^ 0x9E3779B97F4A7C15ull);
  hi = HashCombine(hi, a.size());
  lo = HashCombine(lo, MixHash64(a.size()));
  for (const Value& v : a) {
    const uint64_t vh = v.Hash();
    hi = HashCombine(hi, vh);
    lo = HashCombine(lo, MixHash64(vh));
  }
  // Separator so ({x,y}, {z}) and ({x}, {y,z}) cannot alias.
  hi = HashCombine(hi, 0x5eedull);
  lo = HashCombine(lo, 0xfeedull);
  for (const Value& v : b) {
    const uint64_t vh = v.Hash();
    hi = HashCombine(hi, vh);
    lo = HashCombine(lo, MixHash64(vh));
  }
  return Key{hi, lo};
}

bool MlScoreCache::Lookup(const Key& key, double* score) const {
  const Shard& shard = shards_[ShardOf(key)];
  common::MutexLock lock(shard.mu);
  auto it = shard.scores.find(key);
  if (it == shard.scores.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  *score = it->second;
  return true;
}

bool MlScoreCache::Contains(const Key& key) const {
  const Shard& shard = shards_[ShardOf(key)];
  common::MutexLock lock(shard.mu);
  return shard.scores.find(key) != shard.scores.end();
}

void MlScoreCache::Insert(const Key& key, double score) {
  Shard& shard = shards_[ShardOf(key)];
  common::MutexLock lock(shard.mu);
  if (shard.scores.emplace(key, score).second) {
    inserts_.fetch_add(1, std::memory_order_relaxed);
  }
}

void MlScoreCache::InsertBatch(const std::vector<Key>& keys,
                               const std::vector<double>& scores) {
  // Group indices by shard so each shard lock is taken once per batch.
  std::vector<uint32_t> by_shard[kNumShards];
  for (size_t i = 0; i < keys.size(); ++i) {
    by_shard[ShardOf(keys[i])].push_back(static_cast<uint32_t>(i));
  }
  uint64_t inserted = 0;
  for (size_t s = 0; s < kNumShards; ++s) {
    if (by_shard[s].empty()) continue;
    Shard& shard = shards_[s];
    common::MutexLock lock(shard.mu);
    for (uint32_t i : by_shard[s]) {
      if (shard.scores.emplace(keys[i], scores[i]).second) ++inserted;
    }
  }
  if (inserted > 0) inserts_.fetch_add(inserted, std::memory_order_relaxed);
}

void MlScoreCache::Clear() {
  for (Shard& shard : shards_) {
    common::MutexLock lock(shard.mu);
    shard.scores.clear();
  }
}

size_t MlScoreCache::size() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    common::MutexLock lock(shard.mu);
    total += shard.scores.size();
  }
  return total;
}

size_t MlScoreCache::ApproxBytes() const {
  size_t bytes = 0;
  for (const Shard& shard : shards_) {
    common::MutexLock lock(shard.mu);
    bytes += shard.scores.size() *
                 (sizeof(Key) + sizeof(double) + sizeof(void*)) +
             shard.scores.bucket_count() * sizeof(void*);
  }
  return bytes;
}

MlScoreCache::Stats MlScoreCache::GetStats() const {
  Stats out;
  out.hits = hits_.load(std::memory_order_relaxed);
  out.misses = misses_.load(std::memory_order_relaxed);
  out.inserts = inserts_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace rock::ml
