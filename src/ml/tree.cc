#include "src/ml/tree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

namespace rock::ml {
namespace {

double Mean(const std::vector<double>& y, const std::vector<int>& indices) {
  if (indices.empty()) return 0.0;
  double sum = 0.0;
  for (int i : indices) sum += y[static_cast<size_t>(i)];
  return sum / static_cast<double>(indices.size());
}

}  // namespace

void DecisionTree::Train(const std::vector<FeatureVector>& x,
                         const std::vector<double>& y) {
  nodes_.clear();
  feature_gain_.assign(x.empty() ? 0 : x[0].size(), 0.0);
  if (x.empty()) return;
  std::vector<int> indices(x.size());
  std::iota(indices.begin(), indices.end(), 0);
  BuildNode(x, y, indices, 0);
}

int DecisionTree::BuildNode(const std::vector<FeatureVector>& x,
                            const std::vector<double>& y,
                            std::vector<int>& indices, int depth) {
  int node_id = static_cast<int>(nodes_.size());
  nodes_.emplace_back();
  nodes_[static_cast<size_t>(node_id)].leaf_value = Mean(y, indices);

  if (depth >= options_.max_depth ||
      static_cast<int>(indices.size()) < 2 * options_.min_samples_leaf) {
    return node_id;
  }

  // Parent sum of squared error.
  double parent_mean = nodes_[static_cast<size_t>(node_id)].leaf_value;
  double parent_sse = 0.0;
  for (int i : indices) {
    double d = y[static_cast<size_t>(i)] - parent_mean;
    parent_sse += d * d;
  }
  if (parent_sse <= 1e-12) return node_id;

  const size_t dim = x[0].size();
  int best_feature = -1;
  double best_threshold = 0.0;
  double best_gain = 1e-9;

  std::vector<std::pair<double, double>> sorted;  // (feature value, target)
  for (size_t f = 0; f < dim; ++f) {
    sorted.clear();
    sorted.reserve(indices.size());
    for (int i : indices) {
      sorted.emplace_back(x[static_cast<size_t>(i)][f],
                          y[static_cast<size_t>(i)]);
    }
    std::sort(sorted.begin(), sorted.end());
    if (sorted.front().first == sorted.back().first) continue;

    // Prefix sums for O(n) threshold scan.
    double left_sum = 0.0, left_sq = 0.0;
    double total_sum = 0.0, total_sq = 0.0;
    for (const auto& [_, target] : sorted) {
      total_sum += target;
      total_sq += target * target;
    }
    size_t n = sorted.size();
    for (size_t k = 0; k + 1 < n; ++k) {
      left_sum += sorted[k].second;
      left_sq += sorted[k].second * sorted[k].second;
      if (sorted[k].first == sorted[k + 1].first) continue;
      size_t left_n = k + 1;
      size_t right_n = n - left_n;
      if (static_cast<int>(left_n) < options_.min_samples_leaf ||
          static_cast<int>(right_n) < options_.min_samples_leaf) {
        continue;
      }
      double right_sum = total_sum - left_sum;
      double right_sq = total_sq - left_sq;
      double left_sse = left_sq - left_sum * left_sum / left_n;
      double right_sse = right_sq - right_sum * right_sum / right_n;
      double gain = parent_sse - left_sse - right_sse;
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = static_cast<int>(f);
        best_threshold = (sorted[k].first + sorted[k + 1].first) / 2.0;
      }
    }
  }

  if (best_feature < 0) return node_id;

  std::vector<int> left_idx, right_idx;
  for (int i : indices) {
    if (x[static_cast<size_t>(i)][static_cast<size_t>(best_feature)] <=
        best_threshold) {
      left_idx.push_back(i);
    } else {
      right_idx.push_back(i);
    }
  }
  if (left_idx.empty() || right_idx.empty()) return node_id;

  feature_gain_[static_cast<size_t>(best_feature)] += best_gain;
  int left = BuildNode(x, y, left_idx, depth + 1);
  int right = BuildNode(x, y, right_idx, depth + 1);
  Node& node = nodes_[static_cast<size_t>(node_id)];
  node.feature = best_feature;
  node.split_threshold = best_threshold;
  node.left = left;
  node.right = right;
  return node_id;
}

double DecisionTree::PredictRow(const double* row) const {
  if (nodes_.empty()) return 0.0;
  int node = 0;
  while (nodes_[static_cast<size_t>(node)].feature >= 0) {
    const Node& n = nodes_[static_cast<size_t>(node)];
    double v = row[static_cast<size_t>(n.feature)];
    node = v <= n.split_threshold ? n.left : n.right;
  }
  return nodes_[static_cast<size_t>(node)].leaf_value;
}

void GradientBoostedTrees::Train(const std::vector<FeatureVector>& x,
                                 const std::vector<double>& y) {
  trees_.clear();
  base_prediction_ = 0.0;
  dimension_ = x.empty() ? 0 : x[0].size();
  if (x.empty()) return;
  for (double v : y) base_prediction_ += v;
  base_prediction_ /= static_cast<double>(y.size());

  std::vector<double> prediction(x.size(), base_prediction_);
  std::vector<double> residual(x.size());
  for (int t = 0; t < options_.num_trees; ++t) {
    for (size_t i = 0; i < x.size(); ++i) residual[i] = y[i] - prediction[i];
    DecisionTree tree(options_.tree);
    tree.Train(x, residual);
    bool useful = false;
    for (size_t i = 0; i < x.size(); ++i) {
      double delta = options_.learning_rate * tree.Predict(x[i]);
      if (std::abs(delta) > 1e-12) useful = true;
      prediction[i] += delta;
    }
    trees_.push_back(std::move(tree));
    if (!useful) break;
  }
}

double GradientBoostedTrees::PredictRow(const double* row) const {
  double out = base_prediction_;
  for (const DecisionTree& tree : trees_) {
    out += options_.learning_rate * tree.PredictRow(row);
  }
  return out;
}

void GradientBoostedTrees::PredictBatch(const double* data, size_t rows,
                                        size_t cols,
                                        std::vector<double>* out) const {
  out->reserve(out->size() + rows);
  for (size_t r = 0; r < rows; ++r) {
    out->push_back(PredictRow(data + r * cols));
  }
}

std::vector<double> GradientBoostedTrees::FeatureImportance() const {
  std::vector<double> importance(dimension_, 0.0);
  for (const DecisionTree& tree : trees_) {
    const std::vector<double>& gain = tree.feature_gain();
    for (size_t i = 0; i < gain.size() && i < dimension_; ++i) {
      importance[i] += gain[i];
    }
  }
  double total = 0.0;
  for (double v : importance) total += v;
  if (total > 0) {
    for (double& v : importance) v /= total;
  }
  return importance;
}

}  // namespace rock::ml
