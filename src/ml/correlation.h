#pragma once

#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/kg/graph.h"
#include "src/ml/feature.h"
#include "src/storage/relation.h"
#include "src/storage/schema.h"

namespace rock::ml {

/// Interface of the correlation model M_c(t[A], t[B]) (paper §2.3): the
/// strength, in [0,1], of the correlation between a partial tuple t[A] and
/// a candidate value for attribute B.
class CorrelationModel {
 public:
  virtual ~CorrelationModel() = default;

  /// `values` are the tuple's attribute values; `validated_attrs` is A (the
  /// positions whose values participate); `attr_b`/`candidate` are B and
  /// the value whose correlation with t[A] is assessed.
  virtual double Strength(const std::vector<Value>& values,
                          const std::vector<int>& validated_attrs, int attr_b,
                          const Value& candidate) const = 0;
};

/// Interface of the predictive model t[B] = M_d(t[A], B) (paper §2.3):
/// suggests a value for missing attribute B from the validated partial
/// tuple t[A]. Implemented per the paper by retrieving candidates and
/// ranking them with the correlation encoders.
class ValuePredictor {
 public:
  virtual ~ValuePredictor() = default;

  virtual Result<Value> PredictValue(const std::vector<Value>& values,
                                     const std::vector<int>& validated_attrs,
                                     int attr_b) const = 0;

  /// The ranked candidate list (best first); PredictValue returns its head.
  virtual std::vector<Value> Candidates(
      const std::vector<Value>& values,
      const std::vector<int>& validated_attrs, int attr_b) const = 0;
};

/// M_c / M_d implementation: smoothed conditional co-occurrence statistics
/// between attribute values (the "graph embedding" classification of the
/// paper is replaced by co-occurrence counts mined from the same training
/// relation plus, optionally, a knowledge graph), blended with a hashed
/// text-embedding similarity backoff for unseen value combinations.
class CooccurrenceModel : public CorrelationModel, public ValuePredictor {
 public:
  struct Options {
    /// Additive smoothing for conditional probabilities.
    double smoothing = 0.1;
    /// Weight of the co-occurrence evidence vs. the embedding backoff.
    double cooccurrence_weight = 0.85;
    int text_dim = 64;
  };

  CooccurrenceModel();
  explicit CooccurrenceModel(Options options)
      : options_(options), text_(options.text_dim) {}

  /// Mines co-occurrence statistics from `relation` (every pair of
  /// attributes). Rows with nulls contribute only their non-null pairs.
  void TrainOnRelation(const Relation& relation);

  /// Additionally mines (subject-label, edge-label, object-label) triples:
  /// an edge v --l--> w counts as co-occurrence of v's label (keyed by
  /// attribute `subject_attr`) with w's label (keyed by `object_attr`).
  void TrainOnGraph(const kg::KnowledgeGraph& graph, int subject_attr,
                    int object_attr);

  double Strength(const std::vector<Value>& values,
                  const std::vector<int>& validated_attrs, int attr_b,
                  const Value& candidate) const override;

  Result<Value> PredictValue(const std::vector<Value>& values,
                             const std::vector<int>& validated_attrs,
                             int attr_b) const override;

  std::vector<Value> Candidates(const std::vector<Value>& values,
                                const std::vector<int>& validated_attrs,
                                int attr_b) const override;

 private:
  struct ValueKey {
    int attr;
    uint64_t hash;
    bool operator<(const ValueKey& o) const {
      return attr != o.attr ? attr < o.attr : hash < o.hash;
    }
  };

  Options options_;
  HashedTextFeaturizer text_;
  // cooc_[{attr_a, hash(va)}][attr_b] : value -> count.
  std::map<ValueKey, std::map<int, std::map<Value, double>>> cooc_;
  // Marginal counts per (attr, value) and per attr.
  std::map<ValueKey, double> marginal_;
  std::map<int, double> attr_totals_;
  // Distinct values seen per attribute (candidate universe).
  std::map<int, std::map<Value, double>> attr_values_;

  void Count(int attr_a, const Value& va, int attr_b, const Value& vb,
             double weight);
  double ConditionalScore(int attr_a, const Value& va, int attr_b,
                          const Value& vb) const;
  double EmbeddingScore(const Value& a, const Value& b) const;
};

}  // namespace rock::ml

