#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/ml/feature.h"
#include "src/storage/value.h"

namespace rock::ml {

/// MinHash signature of a token set: `num_hashes` independent minima.
/// Jaccard-similar sets agree on a proportional fraction of slots.
class MinHash {
 public:
  explicit MinHash(int num_hashes = 32, uint64_t seed = 0xC0FFEE);

  std::vector<uint64_t> Signature(const std::vector<std::string>& tokens) const;

  /// Fraction of agreeing slots — an unbiased Jaccard estimate.
  static double Similarity(const std::vector<uint64_t>& a,
                           const std::vector<uint64_t>& b);

  int num_hashes() const { return num_hashes_; }

 private:
  int num_hashes_;
  std::vector<uint64_t> salts_;
};

/// SimHash of a weighted feature vector: one bit per hyperplane. Hamming
/// distance tracks cosine distance.
uint64_t SimHash64(const FeatureVector& features, uint64_t seed = 0x51ABull);

/// LSH blocking index over records described by token sets (paper §5.3/§5.4:
/// "a blocking algorithm is first evoked to retrieve a candidate set of
/// potentially matching tuple ID pairs"). Signatures are cut into bands;
/// records sharing any band land in the same block and become candidates.
class LshBlocker {
 public:
  struct Options {
    int num_hashes = 32;
    // Rows per band; bands = num_hashes / band_size. Two rows per band keeps
    // recall high for moderately similar pairs (P(candidate | jaccard 0.5)
    // ≈ 0.99 with 16 bands) while still pruning the cross product.
    int band_size = 2;
    uint64_t seed = 0xB10C;
  };

  LshBlocker();
  explicit LshBlocker(Options options);

  /// Indexes a record (e.g. a tuple id) under its token set.
  void Add(int64_t id, const std::vector<std::string>& tokens);

  /// Candidate ids sharing at least one band with `tokens` (excluding
  /// nothing; the caller filters self-pairs).
  std::vector<int64_t> Candidates(const std::vector<std::string>& tokens) const;

  /// All candidate pairs (i < j) across the index.
  std::vector<std::pair<int64_t, int64_t>> CandidatePairs() const;

  size_t size() const { return num_records_; }

 private:
  Options options_;
  MinHash minhash_;
  // band index -> (band hash -> ids)
  std::vector<std::unordered_map<uint64_t, std::vector<int64_t>>> bands_;
  size_t num_records_ = 0;

  std::vector<uint64_t> BandHashes(
      const std::vector<std::string>& tokens) const;
};

/// Tokens used for blocking a tuple's attribute values: the union of
/// Tokenize() over the selected attributes' string forms.
std::vector<std::string> BlockingTokens(const std::vector<Value>& values);

}  // namespace rock::ml

