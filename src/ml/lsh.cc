#include "src/ml/lsh.h"

#include <algorithm>
#include <set>

#include "src/common/hash.h"
#include "src/common/strings.h"

namespace rock::ml {

MinHash::MinHash(int num_hashes, uint64_t seed) : num_hashes_(num_hashes) {
  salts_.reserve(static_cast<size_t>(num_hashes));
  uint64_t state = seed;
  for (int i = 0; i < num_hashes; ++i) {
    state = MixHash64(state + 0x9E3779B97F4A7C15ull);
    salts_.push_back(state);
  }
}

std::vector<uint64_t> MinHash::Signature(
    const std::vector<std::string>& tokens) const {
  std::vector<uint64_t> sig(static_cast<size_t>(num_hashes_),
                            UINT64_MAX);
  for (const std::string& tok : tokens) {
    uint64_t base = Hash64(tok);
    for (int i = 0; i < num_hashes_; ++i) {
      uint64_t h = MixHash64(base ^ salts_[static_cast<size_t>(i)]);
      sig[static_cast<size_t>(i)] =
          std::min(sig[static_cast<size_t>(i)], h);
    }
  }
  return sig;
}

double MinHash::Similarity(const std::vector<uint64_t>& a,
                           const std::vector<uint64_t>& b) {
  size_t n = std::min(a.size(), b.size());
  if (n == 0) return 0.0;
  size_t matches = 0;
  for (size_t i = 0; i < n; ++i) {
    if (a[i] == b[i]) ++matches;
  }
  return static_cast<double>(matches) / static_cast<double>(n);
}

uint64_t SimHash64(const FeatureVector& features, uint64_t seed) {
  double acc[64] = {0};
  for (size_t i = 0; i < features.size(); ++i) {
    if (features[i] == 0.0) continue;
    uint64_t bits = MixHash64(seed ^ (i * 0x9E3779B97F4A7C15ull));
    for (int b = 0; b < 64; ++b) {
      acc[b] += ((bits >> b) & 1) ? features[i] : -features[i];
    }
  }
  uint64_t out = 0;
  for (int b = 0; b < 64; ++b) {
    if (acc[b] > 0) out |= (1ull << b);
  }
  return out;
}

LshBlocker::LshBlocker() : LshBlocker(Options()) {}

LshBlocker::LshBlocker(Options options)
    : options_(options), minhash_(options.num_hashes, options.seed) {
  int num_bands =
      std::max(1, options_.num_hashes / std::max(1, options_.band_size));
  bands_.resize(static_cast<size_t>(num_bands));
}

std::vector<uint64_t> LshBlocker::BandHashes(
    const std::vector<std::string>& tokens) const {
  std::vector<uint64_t> sig = minhash_.Signature(tokens);
  std::vector<uint64_t> out;
  out.reserve(bands_.size());
  for (size_t band = 0; band < bands_.size(); ++band) {
    uint64_t h = MixHash64(band + 1);
    for (int r = 0; r < options_.band_size; ++r) {
      size_t idx = band * static_cast<size_t>(options_.band_size) +
                   static_cast<size_t>(r);
      if (idx < sig.size()) h = HashCombine(h, sig[idx]);
    }
    out.push_back(h);
  }
  return out;
}

void LshBlocker::Add(int64_t id, const std::vector<std::string>& tokens) {
  std::vector<uint64_t> hashes = BandHashes(tokens);
  for (size_t band = 0; band < bands_.size(); ++band) {
    bands_[band][hashes[band]].push_back(id);
  }
  ++num_records_;
}

std::vector<int64_t> LshBlocker::Candidates(
    const std::vector<std::string>& tokens) const {
  std::vector<uint64_t> hashes = BandHashes(tokens);
  std::set<int64_t> out;
  for (size_t band = 0; band < bands_.size(); ++band) {
    auto it = bands_[band].find(hashes[band]);
    if (it == bands_[band].end()) continue;
    out.insert(it->second.begin(), it->second.end());
  }
  return std::vector<int64_t>(out.begin(), out.end());
}

std::vector<std::pair<int64_t, int64_t>> LshBlocker::CandidatePairs() const {
  std::set<std::pair<int64_t, int64_t>> pairs;
  for (const auto& band : bands_) {
    for (const auto& [hash, ids] : band) {
      for (size_t i = 0; i < ids.size(); ++i) {
        for (size_t j = i + 1; j < ids.size(); ++j) {
          int64_t a = std::min(ids[i], ids[j]);
          int64_t b = std::max(ids[i], ids[j]);
          if (a != b) pairs.emplace(a, b);
        }
      }
    }
  }
  return std::vector<std::pair<int64_t, int64_t>>(pairs.begin(), pairs.end());
}

std::vector<std::string> BlockingTokens(const std::vector<Value>& values) {
  std::vector<std::string> tokens;
  for (const Value& v : values) {
    if (v.is_null()) continue;
    for (std::string& tok : Tokenize(v.ToString())) {
      tokens.push_back(std::move(tok));
    }
  }
  std::sort(tokens.begin(), tokens.end());
  tokens.erase(std::unique(tokens.begin(), tokens.end()), tokens.end());
  return tokens;
}

}  // namespace rock::ml
