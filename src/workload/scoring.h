#pragma once

#include <map>
#include <optional>
#include <set>

#include "src/chase/chase.h"
#include "src/workload/generator.h"

namespace rock::workload {

/// Precision / recall / F-measure with the underlying counts, as used
/// throughout the paper's evaluation (§6).
struct Prf {
  size_t true_positives = 0;
  size_t false_positives = 0;
  size_t false_negatives = 0;

  double precision() const {
    size_t denom = true_positives + false_positives;
    return denom == 0 ? 0.0 : static_cast<double>(true_positives) / denom;
  }
  double recall() const {
    size_t denom = true_positives + false_negatives;
    return denom == 0 ? 0.0 : static_cast<double>(true_positives) / denom;
  }
  double f1() const {
    double p = precision(), r = recall();
    return p + r == 0 ? 0.0 : 2 * p * r / (p + r);
  }
};

/// Scores error detection at tuple granularity (the paper manually checks
/// tuples): a flagged tuple is a true positive iff it carries an injected
/// error. `only` restricts the truth set to one error type (per-task F1).
Prf ScoreDetection(const GeneratedData& data,
                   const std::set<std::pair<int, int64_t>>& flagged,
                   std::optional<InjectedError> only = std::nullopt);

/// Correction scoring against the injected-error log:
///  - duplicates: corrected iff the clone and original share a canonical
///    EID after the chase;
///  - conflicts / nulls: corrected iff the repaired cell equals the clean
///    value;
///  - stale: corrected iff the fix store orders the stale version at or
///    below the current one on the corrupted attribute.
/// Precision counts the chase's changes (cell fixes, merges, temporal
/// pairs) that match the log; recall counts log entries recovered.
struct CorrectionScore {
  Prf overall;
  std::map<InjectedError, Prf> by_type;
};

CorrectionScore ScoreCorrection(const GeneratedData& data,
                                const chase::ChaseEngine& engine);

/// Truth tuples (any injected error), optionally restricted by type.
std::set<std::pair<int, int64_t>> TruthTuples(
    const GeneratedData& data,
    std::optional<InjectedError> only = std::nullopt);

/// Per-task detection scoring (paper Fig 4(d)-(f)): a task is a filter over
/// the error log (error types + relations); flagged tuples outside the
/// task's relations are ignored.
struct TaskFilter {
  std::string name;
  /// Empty = every type / relation.
  std::set<InjectedError> types;
  std::set<int> rels;

  bool Matches(const ErrorLogEntry& entry) const {
    return (types.empty() || types.count(entry.type) > 0) &&
           (rels.empty() || rels.count(entry.rel) > 0);
  }
};

Prf ScoreDetectionTask(const GeneratedData& data,
                       const std::set<std::pair<int, int64_t>>& flagged,
                       const TaskFilter& task);

}  // namespace rock::workload

