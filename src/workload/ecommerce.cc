#include "src/workload/ecommerce.h"

#include "src/common/logging.h"

namespace rock::workload {
namespace {

Value S(const char* s) { return Value::String(s); }

/// Dates are encoded as YYYYMMDD in a kTime value: monotone in calendar
/// order, which is all the temporal predicates need.
Value D(int64_t yyyymmdd) { return Value::Time(yyyymmdd); }

void AddTuple(Database& db, int rel, int64_t eid, std::vector<Value> values) {
  Tuple t;
  t.eid = eid;
  t.values = std::move(values);
  auto tid = db.Insert(rel, std::move(t));
  ROCK_CHECK(tid.ok());
}

}  // namespace

EcommerceData MakeEcommerceData() {
  DatabaseSchema schema;
  ROCK_CHECK(schema
                 .AddRelation(Schema("Person",
                                     {{"pid", ValueType::kString},
                                      {"LN", ValueType::kString},
                                      {"FN", ValueType::kString},
                                      {"gender", ValueType::kString},
                                      {"home", ValueType::kString},
                                      {"status", ValueType::kString},
                                      {"spouse", ValueType::kString}}))
                 .ok());
  ROCK_CHECK(schema
                 .AddRelation(Schema("Store",
                                     {{"sid", ValueType::kString},
                                      {"name", ValueType::kString},
                                      {"type", ValueType::kString},
                                      {"location", ValueType::kString},
                                      {"accu_sales", ValueType::kDouble},
                                      {"area_code", ValueType::kString}}))
                 .ok());
  ROCK_CHECK(schema
                 .AddRelation(Schema("Trans",
                                     {{"pid", ValueType::kString},
                                      {"sid", ValueType::kString},
                                      {"com", ValueType::kString},
                                      {"mfg", ValueType::kString},
                                      {"price", ValueType::kDouble},
                                      {"date", ValueType::kTime}}))
                 .ok());

  EcommerceData out;
  out.db = Database(std::move(schema));
  Database& db = out.db;

  // Person (Table 1); erroneous values from the paper are kept verbatim:
  // t2.home "5 West Road" (should be "5 Beijing West Road"), t2.status
  // "single" with a spouse, t5 has nulls to impute.
  AddTuple(db, out.person, 101,
           {S("p1"), S("Jones"), S("Christine"), S("F"),
            S("5 Beijing West Road"), S("single"), Value::Null()});
  AddTuple(db, out.person, 102,
           {S("p2"), S("Smith"), S("Christine"), S("F"), S("5 West Road"),
            S("single"), S("p3")});
  AddTuple(db, out.person, 102,
           {S("p2"), S("Smith"), S("Christine"), S("F"), S("12 Beijing Road"),
            S("married"), S("p4")});
  AddTuple(db, out.person, 103,
           {S("p3"), S("Smith"), S("George"), S("M"), S("12 Beijing Road"),
            S("married"), S("p2")});
  AddTuple(db, out.person, 104,
           {S("p4"), S("Smith"), S("George"), S("M"), Value::Null(),
            Value::Null(), Value::Null()});

  // Store (Table 2).
  AddTuple(db, out.store, 211,
           {S("s1"), S("Apple Jingdong Self-run"), S("Electron."),
            S("Beijing"), Value::Double(15e6), Value::Null()});
  AddTuple(db, out.store, 212,
           {S("s2"), S("Apple Taobao Flagship"), S("Electron."), Value::Null(),
            Value::Null(), Value::Null()});
  AddTuple(db, out.store, 213,
           {S("s3"), S("Huawei Flagship"), S("Electron."), S("Beijing"),
            Value::Double(11e6), Value::Null()});
  AddTuple(db, out.store, 214,
           {S("s4"), S("Huawei"), S("Sports"), S("Shanghai"),
            Value::Double(10e6), S("021")});
  AddTuple(db, out.store, 215,
           {S("s5"), S("Nike China"), S("Sports"), S("Shanghai"),
            Value::Null(), S("021")});

  // Transaction (Table 3). t15.mfg "Apple" is erroneous (should be Huawei);
  // t13/t15 prices are missing.
  AddTuple(db, out.trans, 321,
           {S("p1"), S("s2"), S("IPhone 13"), S("Apple"),
            Value::Double(9000), D(20201218)});
  AddTuple(db, out.trans, 322,
           {S("p1"), S("s1"), S("IPhone 14 (Discount ID 41)"), S("Apple"),
            Value::Double(6500), D(20211111)});
  AddTuple(db, out.trans, 323,
           {S("p2"), S("s1"), S("IPhone 14 (Discount Code 41)"), S("Apple"),
            Value::Null(), D(20211111)});
  AddTuple(db, out.trans, 324,
           {S("p3"), S("s3"), S("Mate X2 (Limited Sold)"), S("Huawei"),
            Value::Double(5200), D(20230812)});
  AddTuple(db, out.trans, 325,
           {S("p4"), S("s4"), S("Mate X2 (Limited Sold)"), S("Apple"),
            Value::Null(), D(20230812)});

  // Wikipedia-like knowledge graph for φ7-style extraction.
  kg::KnowledgeGraph& g = out.graph;
  kg::VertexId huawei = g.AddVertex("Huawei Flagship");
  kg::VertexId nike = g.AddVertex("Nike China");
  kg::VertexId apple_jd = g.AddVertex("Apple Jingdong Self-run");
  kg::VertexId apple_tb = g.AddVertex("Apple Taobao Flagship");
  kg::VertexId beijing = g.AddVertex("Beijing");
  kg::VertexId shanghai = g.AddVertex("Shanghai");
  kg::VertexId electronics = g.AddVertex("Electron.");
  kg::VertexId sports = g.AddVertex("Sports");
  ROCK_CHECK(g.AddEdge(huawei, "LocationAt", beijing).ok());
  ROCK_CHECK(g.AddEdge(nike, "LocationAt", shanghai).ok());
  ROCK_CHECK(g.AddEdge(apple_jd, "LocationAt", beijing).ok());
  ROCK_CHECK(g.AddEdge(apple_tb, "LocationAt", beijing).ok());
  ROCK_CHECK(g.AddEdge(huawei, "TypeOf", electronics).ok());
  ROCK_CHECK(g.AddEdge(apple_jd, "TypeOf", electronics).ok());
  ROCK_CHECK(g.AddEdge(apple_tb, "TypeOf", electronics).ok());
  ROCK_CHECK(g.AddEdge(nike, "TypeOf", sports).ok());
  out.huawei_store_vertex = huawei;
  out.nike_store_vertex = nike;
  return out;
}

}  // namespace rock::workload
