#include "src/workload/generator.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "src/common/logging.h"
#include "src/common/strings.h"

namespace rock::workload {
namespace {

Value S(std::string s) { return Value::String(std::move(s)); }

const char* kFirstNames[] = {"James", "Mary",  "Robert", "Patricia",
                             "John",  "Linda", "Wei",    "Min",
                             "Elena", "Ahmed", "Yuki",   "Carlos",
                             "Ana",   "Igor",  "Fatima", "Noah"};
const char* kLastNames[] = {"Smith", "Johnson", "Chen",   "Wang",
                            "Silva", "Kumar",   "Garcia", "Mueller",
                            "Rossi", "Tanaka",  "Ivanov", "Haddad",
                            "Brown", "Jones",   "Kim",    "Osman"};
const char* kCompanyStems[] = {"Acme",    "Globex",  "Initech", "Umbrella",
                               "Stark",   "Wayne",   "Cyberdyne", "Tyrell",
                               "Hooli",   "Monarch", "Vandelay",  "Wonka",
                               "Sirius",  "Gringott", "Aperture", "Zenith"};
const char* kCompanySuffixes[] = {"Ltd", "Inc", "Group", "Holdings"};
const char* kCities[] = {"Beijing",  "Shanghai", "Shenzhen", "Guangzhou",
                         "Hangzhou", "Chengdu",  "Wuhan",    "Nanjing",
                         "Tianjin",  "Xian"};
const char* kAreaCodes[] = {"010", "021", "0755", "020", "0571",
                            "028", "027", "025",  "022", "029"};
const char* kIndustries[] = {"finance", "retail", "logistics", "energy",
                             "telecom", "media"};
const char* kStreets[] = {"Renmin Road",   "Jianguo Road", "Zhongshan Ave",
                          "Nanjing Road",  "Huaihai Road", "Jiefang Street",
                          "Heping Street", "Xinhua Road"};
const char* kAreas[] = {"Chaoyang", "Haidian", "Pudong", "Minhang",
                        "Nanshan",  "Futian",  "Tianhe", "Yuexiu"};
const char* kCategories[] = {"mobile", "laptop", "tablet", "camera",
                             "audio",  "wearable"};
const char* kBrands[] = {"Huawei", "Apple", "Xiaomi", "Lenovo",
                         "Sony",   "Canon"};

template <size_t N>
const char* Pick(const char* (&pool)[N], size_t index) {
  return pool[index % N];
}

/// Appends a tuple and registers its true entity and version in `data`.
int64_t AddRow(GeneratedData* data, int rel, int64_t eid,
               std::vector<Value> values,
               std::vector<int64_t> timestamps = {}) {
  Tuple t;
  t.eid = eid;
  t.values = std::move(values);
  t.timestamps = std::move(timestamps);
  auto tid = data->db.Insert(rel, std::move(t));
  ROCK_CHECK(tid.ok());
  return *tid;
}

/// Corrupts one cell, logging the clean value. A draw equal to the clean
/// value is skipped (no error injected).
void InjectConflict(GeneratedData* data, Rng* rng, int rel, int64_t tid,
                    int attr, Value wrong) {
  Relation& relation = data->db.relation(rel);
  int row = relation.RowOfTid(tid);
  ROCK_CHECK(row >= 0);
  Tuple& t = relation.mutable_tuple(static_cast<size_t>(row));
  if (t.values[static_cast<size_t>(attr)] == wrong) return;
  ErrorLogEntry entry;
  entry.type = InjectedError::kConflict;
  entry.rel = rel;
  entry.tid = tid;
  entry.attr = attr;
  entry.clean_value = t.values[static_cast<size_t>(attr)];
  t.values[static_cast<size_t>(attr)] = std::move(wrong);
  data->errors.push_back(std::move(entry));
  (void)rng;
}

void InjectNull(GeneratedData* data, int rel, int64_t tid, int attr) {
  Relation& relation = data->db.relation(rel);
  int row = relation.RowOfTid(tid);
  ROCK_CHECK(row >= 0);
  Tuple& t = relation.mutable_tuple(static_cast<size_t>(row));
  if (t.values[static_cast<size_t>(attr)].is_null()) return;
  ErrorLogEntry entry;
  entry.type = InjectedError::kNull;
  entry.rel = rel;
  entry.tid = tid;
  entry.attr = attr;
  entry.clean_value = t.values[static_cast<size_t>(attr)];
  t.values[static_cast<size_t>(attr)] = Value::Null();
  data->errors.push_back(std::move(entry));
}

}  // namespace

const char* InjectedErrorName(InjectedError type) {
  switch (type) {
    case InjectedError::kDuplicate:
      return "duplicate";
    case InjectedError::kConflict:
      return "conflict";
    case InjectedError::kNull:
      return "null";
    case InjectedError::kStale:
      return "stale";
  }
  return "?";
}

std::string InjectTypo(const std::string& text, Rng* rng) {
  if (text.size() < 3) return text + "x";
  std::string out = text;
  switch (rng->NextBounded(3)) {
    case 0: {  // swap adjacent characters
      size_t i = 1 + rng->NextBounded(out.size() - 2);
      std::swap(out[i], out[i - 1]);
      break;
    }
    case 1: {  // drop a character
      size_t i = 1 + rng->NextBounded(out.size() - 2);
      out.erase(i, 1);
      break;
    }
    default: {  // duplicate a character
      size_t i = 1 + rng->NextBounded(out.size() - 2);
      out.insert(i, 1, out[i]);
      break;
    }
  }
  return out;
}

std::string SyntheticName(size_t entity, bool company) {
  if (company) {
    return std::string(Pick(kCompanyStems, entity)) + " " +
           Pick(kCompanySuffixes, entity / 16) + " " +
           std::to_string(entity % 97);
  }
  return std::string(Pick(kFirstNames, entity)) + " " +
         Pick(kLastNames, entity / 16) + " " + std::to_string(entity % 89);
}

GeneratedData MakeBankData(const GeneratorOptions& options) {
  GeneratedData data;
  Rng rng(options.seed);

  DatabaseSchema schema;
  ROCK_CHECK(schema
                 .AddRelation(Schema("Customer",
                                     {{"cust_id", ValueType::kString},
                                      {"name", ValueType::kString},
                                      {"branch", ValueType::kString},
                                      {"city", ValueType::kString},
                                      {"phone_area", ValueType::kString},
                                      {"points", ValueType::kDouble},
                                      {"status", ValueType::kString}}))
                 .ok());
  ROCK_CHECK(schema
                 .AddRelation(Schema("Company",
                                     {{"comp_id", ValueType::kString},
                                      {"name", ValueType::kString},
                                      {"industry", ValueType::kString},
                                      {"city", ValueType::kString},
                                      {"reg_code", ValueType::kString}}))
                 .ok());
  ROCK_CHECK(schema
                 .AddRelation(Schema("Payment",
                                     {{"pay_id", ValueType::kString},
                                      {"cust_id", ValueType::kString},
                                      {"amount", ValueType::kDouble},
                                      {"fee", ValueType::kDouble},
                                      {"tax", ValueType::kDouble},
                                      {"total", ValueType::kDouble}}))
                 .ok());
  data.db = Database(std::move(schema));
  const int kCustomer = 0, kCompany = 1, kPayment = 2;
  const int64_t kEidBase = 1000000;

  std::vector<int64_t> customer_tids;
  // Customers: branch determines city, city determines phone_area.
  for (size_t i = 0; i < options.rows; ++i) {
    size_t branch = rng.NextBounded(20);
    size_t city = branch % 10;
    int64_t tid = AddRow(
        &data, kCustomer, kEidBase + static_cast<int64_t>(i),
        {S("c" + std::to_string(i)), S(SyntheticName(i, false)),
         S("branch-" + std::to_string(branch)), S(kCities[city]),
         S(kAreaCodes[city]), Value::Double(100.0 + rng.NextBounded(900)),
         S(rng.NextBernoulli(0.3) ? "premium" : "standard")});
    customer_tids.push_back(tid);
  }
  // Companies: city determines reg_code ("R-<city>").
  std::vector<int64_t> company_tids;
  for (size_t i = 0; i < options.rows / 2; ++i) {
    size_t city = rng.NextBounded(10);
    int64_t tid = AddRow(
        &data, kCompany, kEidBase + 100000 + static_cast<int64_t>(i),
        {S("comp" + std::to_string(i)), S(SyntheticName(i, true)),
         S(Pick(kIndustries, rng.NextBounded(6))), S(kCities[city]),
         S("R-" + std::string(kCities[city]))});
    company_tids.push_back(tid);
  }
  // Payments: total = amount + fee + tax (the TPA polynomial invariant).
  std::vector<int64_t> payment_tids;
  for (size_t i = 0; i < options.rows; ++i) {
    double amount = 100.0 + static_cast<double>(rng.NextBounded(9000));
    // Fee is set independently of the amount so the TPA polynomial
    // genuinely needs all three inputs.
    double fee = 5.0 + static_cast<double>(rng.NextBounded(95));
    double tax = std::floor(amount * 0.06 * 100) / 100;
    int64_t tid = AddRow(
        &data, kPayment, kEidBase + 200000 + static_cast<int64_t>(i),
        {S("pay" + std::to_string(i)),
         S("c" + std::to_string(rng.NextBounded(options.rows))),
         Value::Double(amount), Value::Double(fee), Value::Double(tax),
         Value::Double(amount + fee + tax)});
    payment_tids.push_back(tid);
  }

  std::set<int64_t> touched;
  size_t num_errors = std::max<size_t>(
      2, static_cast<size_t>(options.error_rate * options.rows));

  // CNC: duplicate customers from partial double entry — typo'd name,
  // same cust_id, but branch/city/phone_area left blank. Recovering the
  // blanks REQUIRES entity resolution first (the paper's ER-helps-MI
  // interaction); a single-pass system misses the downstream fills.
  for (size_t e = 0; e < num_errors; ++e) {
    size_t victim = rng.NextBounded(customer_tids.size());
    const Relation& customer = data.db.relation(kCustomer);
    int row = customer.RowOfTid(customer_tids[victim]);
    const Tuple& original = customer.tuple(static_cast<size_t>(row));
    // AddRow below appends to the same relation and may reallocate its
    // tuple storage, invalidating `original` — take what we need first.
    const int64_t original_tid = original.tid;
    std::vector<Value> values = original.values;
    values[1] = S(InjectTypo(values[1].AsString(), &rng));
    std::vector<Value> clean_hidden = {values[2], values[3], values[4]};
    values[2] = Value::Null();
    values[3] = Value::Null();
    values[4] = Value::Null();
    // The clone SHOULD share the original's entity; giving it a fresh EID
    // is the injected ER defect.
    int64_t clone_tid =
        AddRow(&data, kCustomer,
               kEidBase + 500000 + static_cast<int64_t>(e), values);
    ErrorLogEntry entry;
    entry.type = InjectedError::kDuplicate;
    entry.rel = kCustomer;
    entry.tid = clone_tid;
    entry.tid2 = original_tid;
    data.errors.push_back(entry);
    for (int attr = 2; attr <= 4; ++attr) {
      ErrorLogEntry null_entry;
      null_entry.type = InjectedError::kNull;
      null_entry.rel = kCustomer;
      null_entry.tid = clone_tid;
      null_entry.attr = attr;
      null_entry.clean_value = clean_hidden[static_cast<size_t>(attr - 2)];
      data.errors.push_back(null_entry);
    }
    touched.insert(clone_tid);
    touched.insert(original_tid);
  }
  // CIC: company reg_code conflicts + city nulls.
  for (size_t e = 0; e < num_errors; ++e) {
    int64_t tid = company_tids[rng.NextBounded(company_tids.size())];
    if (touched.count(tid)) continue;
    touched.insert(tid);
    if (e % 2 == 0) {
      InjectConflict(&data, &rng, kCompany, tid, 4,
                     S("R-" + std::string(kCities[rng.NextBounded(10)])));
    } else {
      InjectNull(&data, kCompany, tid, 4);
    }
  }
  // Customer city conflicts + phone_area nulls (part of ESClean).
  for (size_t e = 0; e < num_errors; ++e) {
    int64_t tid = customer_tids[rng.NextBounded(customer_tids.size())];
    if (touched.count(tid)) continue;
    touched.insert(tid);
    if (e % 2 == 0) {
      InjectConflict(&data, &rng, kCustomer, tid, 3,
                     S(kCities[rng.NextBounded(10)]));
    } else {
      InjectNull(&data, kCustomer, tid, 4);
    }
  }
  // TPA: corrupt or null payment totals.
  for (size_t e = 0; e < num_errors; ++e) {
    int64_t tid = payment_tids[rng.NextBounded(payment_tids.size())];
    if (touched.count(tid)) continue;
    touched.insert(tid);
    const Relation& payment = data.db.relation(kPayment);
    int row = payment.RowOfTid(tid);
    double correct = payment.tuple(static_cast<size_t>(row)).value(5)
                         .AsDouble();
    if (e % 2 == 0) {
      InjectConflict(&data, &rng, kPayment, tid, 5,
                     Value::Double(correct * (1.5 + rng.NextDouble())));
    } else {
      InjectNull(&data, kPayment, tid, 5);
    }
  }
  // TD: stale customer versions — an older (branch, city) with an older
  // timestamp and fewer points; the newer original stays current.
  for (size_t e = 0; e < num_errors; ++e) {
    size_t victim = rng.NextBounded(customer_tids.size());
    const Relation& customer = data.db.relation(kCustomer);
    int row = customer.RowOfTid(customer_tids[victim]);
    const Tuple& current = customer.tuple(static_cast<size_t>(row));
    if (touched.count(current.tid)) continue;
    touched.insert(current.tid);
    size_t old_branch = rng.NextBounded(20);
    size_t old_city = old_branch % 10;
    std::vector<Value> values = current.values;
    values[2] = S("branch-" + std::to_string(old_branch));
    values[3] = S(kCities[old_city]);
    values[4] = S(kAreaCodes[old_city]);
    values[5] = Value::Double(values[5].AsDouble() / 2.0);  // fewer points
    std::vector<int64_t> timestamps(values.size(), kNoTimestamp);
    timestamps[3] = 1000;  // old city confirmed early
    int64_t stale_tid = AddRow(&data, kCustomer, current.eid, values,
                               std::move(timestamps));
    // Give the current version a later timestamp on city.
    Relation& mut = data.db.relation(kCustomer);
    Tuple& cur = mut.mutable_tuple(static_cast<size_t>(row));
    if (cur.timestamps.empty()) {
      cur.timestamps.assign(cur.values.size(), kNoTimestamp);
    }
    cur.timestamps[3] = 2000;
    ErrorLogEntry entry;
    entry.type = InjectedError::kStale;
    entry.rel = kCustomer;
    entry.tid = stale_tid;
    entry.attr = 3;
    entry.tid2 = current.tid;
    entry.clean_value = current.values[3];
    data.errors.push_back(entry);
    touched.insert(stale_tid);
  }

  for (size_t rel = 0; rel < data.db.num_relations(); ++rel) {
    const Relation& relation = data.db.relation(static_cast<int>(rel));
    for (size_t row = 0; row < relation.size(); ++row) {
      int64_t tid = relation.tuple(row).tid;
      if (touched.count(tid) == 0) {
        data.clean_tuples.emplace_back(static_cast<int>(rel), tid);
      }
    }
  }

  data.rule_text =
      "Customer(t0) ^ Customer(t1) ^ t0.cust_id = t1.cust_id ^ "
      "MER(t0[name], t1[name]) -> t0.eid = t1.eid\n"
      "Customer(t0) ^ Customer(t1) ^ t0.branch = t1.branch -> "
      "t0.city = t1.city\n"
      "Customer(t0) ^ Customer(t1) ^ t0.city = t1.city -> "
      "t0.phone_area = t1.phone_area\n"
      "Customer(t0) ^ Customer(t1) ^ t0.eid = t1.eid ^ "
      "null(t0.branch) ^ t0.points = t1.points -> t0.branch = t1.branch\n"
      "Company(t0) ^ Company(t1) ^ t0.city = t1.city -> "
      "t0.reg_code = t1.reg_code\n"
      "Customer(t0) ^ Customer(t1) ^ t0.eid = t1.eid ^ "
      "t0.points <= t1.points -> t0 <=[city] t1\n"
      "Customer(t0) ^ Customer(t1) ^ t0.eid = t1.eid ^ "
      "Mrank(t0, t1, <=[city]) -> t0 <=[city] t1\n"
      "Customer(t0) ^ Customer(t1) ^ t0.eid = t1.eid ^ t0 <[city] t1 -> "
      "t0.city = t1.city\n";
  return data;
}

GeneratedData MakeLogisticsData(const GeneratorOptions& options) {
  GeneratedData data;
  Rng rng(options.seed + 1);

  DatabaseSchema schema;
  ROCK_CHECK(schema
                 .AddRelation(Schema("Shipment",
                                     {{"ship_id", ValueType::kString},
                                      {"recipient", ValueType::kString},
                                      {"street", ValueType::kString},
                                      {"area", ValueType::kString},
                                      {"city", ValueType::kString},
                                      {"zip", ValueType::kString},
                                      {"seller_id", ValueType::kString},
                                      {"seller_name", ValueType::kString},
                                      {"weight", ValueType::kDouble},
                                      {"order_date", ValueType::kTime}}))
                 .ok());
  data.db = Database(std::move(schema));
  const int kShipment = 0;
  const int64_t kEidBase = 2000000;

  // Postal geography: zip determines street/area/city. 40 zips.
  const size_t kZips = 40;
  auto zip_of = [](size_t z) { return "Z" + std::to_string(10000 + z); };
  // Knowledge graph: zip --AreaOf--> area, --CityOf--> city.
  std::vector<kg::VertexId> zip_vertices;
  for (size_t z = 0; z < kZips; ++z) {
    kg::VertexId v = data.graph.AddVertex(zip_of(z));
    kg::VertexId area = data.graph.AddVertex(Pick(kAreas, z));
    kg::VertexId city = data.graph.AddVertex(Pick(kCities, z / 4));
    ROCK_CHECK(data.graph.AddEdge(v, "AreaOf", area).ok());
    ROCK_CHECK(data.graph.AddEdge(v, "CityOf", city).ok());
    zip_vertices.push_back(v);
  }

  std::vector<int64_t> tids;
  for (size_t i = 0; i < options.rows; ++i) {
    size_t z = rng.NextBounded(kZips);
    size_t seller = rng.NextBounded(25);
    int64_t tid = AddRow(
        &data, kShipment, kEidBase + static_cast<int64_t>(i),
        {S("ship" + std::to_string(i)), S(SyntheticName(i, false)),
         S(Pick(kStreets, z)), S(Pick(kAreas, z)), S(Pick(kCities, z / 4)),
         S(zip_of(z)), S("sel" + std::to_string(seller)),
         S(SyntheticName(seller, true)),
         Value::Double(0.5 + rng.NextDouble() * 20),
         Value::Time(20240100 + static_cast<int64_t>(rng.NextBounded(400)))});
    tids.push_back(tid);
  }

  std::set<int64_t> touched;
  size_t num_errors = std::max<size_t>(
      2, static_cast<size_t>(options.error_rate * options.rows));

  // RS: street conflicts (typos) and nulls.
  for (size_t e = 0; e < num_errors; ++e) {
    int64_t tid = tids[rng.NextBounded(tids.size())];
    if (touched.count(tid)) continue;
    touched.insert(tid);
    const Relation& shipment = data.db.relation(kShipment);
    int row = shipment.RowOfTid(tid);
    if (e % 2 == 0) {
      InjectConflict(&data, &rng, kShipment, tid, 2,
                     S(InjectTypo(shipment.tuple(static_cast<size_t>(row))
                                      .value(2).AsString(),
                                  &rng)));
    } else {
      InjectNull(&data, kShipment, tid, 2);
    }
  }
  // RR: residential area — mostly nulls (the paper stresses Logistics data
  // is consistent but incomplete), some conflicts.
  for (size_t e = 0; e < num_errors * 2; ++e) {
    int64_t tid = tids[rng.NextBounded(tids.size())];
    if (touched.count(tid)) continue;
    touched.insert(tid);
    if (e % 4 == 0) {
      InjectConflict(&data, &rng, kShipment, tid, 3,
                     S(Pick(kAreas, rng.NextBounded(8))));
    } else {
      InjectNull(&data, kShipment, tid, 3);
    }
  }
  // SN: seller-name conflicts against seller_id.
  for (size_t e = 0; e < num_errors; ++e) {
    int64_t tid = tids[rng.NextBounded(tids.size())];
    if (touched.count(tid)) continue;
    touched.insert(tid);
    const Relation& shipment = data.db.relation(kShipment);
    int row = shipment.RowOfTid(tid);
    InjectConflict(&data, &rng, kShipment, tid, 7,
                   S(InjectTypo(shipment.tuple(static_cast<size_t>(row))
                                    .value(7).AsString(),
                                &rng)));
  }
  // Duplicate shipments (double data entry) for the ER channel.
  for (size_t e = 0; e < num_errors / 2 + 1; ++e) {
    size_t victim = rng.NextBounded(tids.size());
    const Relation& shipment = data.db.relation(kShipment);
    int row = shipment.RowOfTid(tids[victim]);
    const Tuple& original = shipment.tuple(static_cast<size_t>(row));
    // AddRow below appends to the same relation and may reallocate its
    // tuple storage, invalidating `original` — take what we need first.
    const int64_t original_tid = original.tid;
    std::vector<Value> values = original.values;
    values[1] = S(InjectTypo(values[1].AsString(), &rng));
    int64_t clone_tid =
        AddRow(&data, kShipment, kEidBase + 500000 + static_cast<int64_t>(e),
               values);
    ErrorLogEntry entry;
    entry.type = InjectedError::kDuplicate;
    entry.rel = kShipment;
    entry.tid = clone_tid;
    entry.tid2 = original_tid;
    data.errors.push_back(entry);
    touched.insert(clone_tid);
    touched.insert(original_tid);
  }

  const Relation& shipment = data.db.relation(kShipment);
  for (size_t row = 0; row < shipment.size(); ++row) {
    int64_t tid = shipment.tuple(row).tid;
    if (touched.count(tid) == 0) {
      data.clean_tuples.emplace_back(kShipment, tid);
    }
  }

  data.rule_text =
      "Shipment(t0) ^ Shipment(t1) ^ t0.zip = t1.zip -> "
      "t0.street = t1.street\n"
      "Shipment(t0) ^ Shipment(t1) ^ t0.zip = t1.zip -> t0.area = t1.area\n"
      "Shipment(t0) ^ Shipment(t1) ^ t0.zip = t1.zip -> t0.city = t1.city\n"
      "Shipment(t0) ^ Shipment(t1) ^ t0.seller_id = t1.seller_id -> "
      "t0.seller_name = t1.seller_name\n"
      "Shipment(t0) ^ vertex(x0, G) ^ HER(t0, x0) ^ "
      "match(t0.area, x0.(AreaOf)) -> t0.area = val(x0.(AreaOf))\n"
      "Shipment(t0) ^ Shipment(t1) ^ MER(t0[recipient], t1[recipient]) ^ "
      "t0.zip = t1.zip ^ t0.order_date = t1.order_date -> t0.eid = t1.eid\n";
  return data;
}

GeneratedData MakeSalesData(const GeneratorOptions& options) {
  GeneratedData data;
  Rng rng(options.seed + 2);

  DatabaseSchema schema;
  ROCK_CHECK(schema
                 .AddRelation(Schema("Client",
                                     {{"client_id", ValueType::kString},
                                      {"name", ValueType::kString},
                                      {"company", ValueType::kString},
                                      {"region", ValueType::kString},
                                      {"discount", ValueType::kString},
                                      {"lifetime_value",
                                       ValueType::kDouble}}))
                 .ok());
  ROCK_CHECK(schema
                 .AddRelation(Schema("Product",
                                     {{"prod_id", ValueType::kString},
                                      {"name", ValueType::kString},
                                      {"category", ValueType::kString},
                                      {"brand", ValueType::kString}}))
                 .ok());
  ROCK_CHECK(schema
                 .AddRelation(Schema("Order",
                                     {{"order_id", ValueType::kString},
                                      {"prod_id", ValueType::kString},
                                      {"qty", ValueType::kInt},
                                      {"price", ValueType::kDouble},
                                      {"tax_rate", ValueType::kDouble},
                                      {"price_no_tax", ValueType::kDouble},
                                      {"total", ValueType::kDouble}}))
                 .ok());
  data.db = Database(std::move(schema));
  const int kClient = 0, kProduct = 1, kOrder = 2;
  const int64_t kEidBase = 3000000;

  std::vector<int64_t> client_tids, product_tids, order_tids;
  // Clients: company determines region.
  for (size_t i = 0; i < options.rows / 2; ++i) {
    size_t company = rng.NextBounded(30);
    int64_t tid = AddRow(
        &data, kClient, kEidBase + static_cast<int64_t>(i),
        {S("cl" + std::to_string(i)), S(SyntheticName(i, false)),
         S(SyntheticName(company, true)), S(kCities[company % 10]),
         S("d" + std::to_string(1 + company % 4)),
         Value::Double(1000.0 + rng.NextBounded(50000))});
    client_tids.push_back(tid);
  }
  // Products: name determines brand.
  for (size_t i = 0; i < options.rows / 4; ++i) {
    size_t brand = rng.NextBounded(6);
    int64_t tid = AddRow(
        &data, kProduct, kEidBase + 100000 + static_cast<int64_t>(i),
        {S("pr" + std::to_string(i)),
         // Product names repeat across SKUs of the same line, so the
         // name -> brand dependency is observable (CCN's signal).
         S(std::string(kBrands[brand]) + " " + Pick(kCategories, i % 3) +
           " series"),
         S(Pick(kCategories, i % 3)), S(kBrands[brand])});
    product_tids.push_back(tid);
  }
  // Orders: numeric-heavy; price_no_tax = price - price*tax_rate and
  // total = qty*price (both discoverable as polynomial expressions).
  for (size_t i = 0; i < options.rows; ++i) {
    double price = 50.0 + static_cast<double>(rng.NextBounded(5000));
    double rate = 0.05 + 0.01 * static_cast<double>(rng.NextBounded(10));
    int64_t qty = 1 + static_cast<int64_t>(rng.NextBounded(9));
    int64_t tid = AddRow(
        &data, kOrder, kEidBase + 200000 + static_cast<int64_t>(i),
        {S("o" + std::to_string(i)),
         S("pr" + std::to_string(rng.NextBounded(options.rows / 4))),
         Value::Int(qty), Value::Double(price), Value::Double(rate),
         Value::Double(price - price * rate),
         Value::Double(static_cast<double>(qty) * price)});
    order_tids.push_back(tid);
  }

  std::set<int64_t> touched;
  size_t num_errors = std::max<size_t>(
      2, static_cast<size_t>(options.error_rate * options.rows));

  // CIN: duplicate clients (partial double entry: company and region left
  // blank, so recovering them needs ER first — the interaction channel)
  // + region conflicts.
  for (size_t e = 0; e < num_errors; ++e) {
    if (e % 2 == 0) {
      size_t victim = rng.NextBounded(client_tids.size());
      const Relation& client = data.db.relation(kClient);
      int row = client.RowOfTid(client_tids[victim]);
      const Tuple& original = client.tuple(static_cast<size_t>(row));
      // AddRow below appends to the same relation and may reallocate its
      // tuple storage, invalidating `original` — take what we need first.
      const int64_t original_tid = original.tid;
      std::vector<Value> values = original.values;
      values[1] = S(InjectTypo(values[1].AsString(), &rng));
      std::vector<Value> clean_hidden = {values[2], values[3]};
      values[2] = Value::Null();
      values[3] = Value::Null();
      int64_t clone_tid = AddRow(
          &data, kClient, kEidBase + 500000 + static_cast<int64_t>(e),
          values);
      ErrorLogEntry entry;
      entry.type = InjectedError::kDuplicate;
      entry.rel = kClient;
      entry.tid = clone_tid;
      entry.tid2 = original_tid;
      data.errors.push_back(entry);
      for (int attr = 2; attr <= 3; ++attr) {
        ErrorLogEntry null_entry;
        null_entry.type = InjectedError::kNull;
        null_entry.rel = kClient;
        null_entry.tid = clone_tid;
        null_entry.attr = attr;
        null_entry.clean_value = clean_hidden[static_cast<size_t>(attr - 2)];
        data.errors.push_back(null_entry);
      }
      touched.insert(clone_tid);
      touched.insert(original_tid);
    } else {
      int64_t tid = client_tids[rng.NextBounded(client_tids.size())];
      if (touched.count(tid)) continue;
      touched.insert(tid);
      InjectConflict(&data, &rng, kClient, tid, 3,
                     S(kCities[rng.NextBounded(10)]));
    }
  }
  // CCN: brand conflicts against product name.
  for (size_t e = 0; e < num_errors; ++e) {
    int64_t tid = product_tids[rng.NextBounded(product_tids.size())];
    if (touched.count(tid)) continue;
    touched.insert(tid);
    InjectConflict(&data, &rng, kProduct, tid, 3,
                   S(kBrands[rng.NextBounded(6)]));
  }
  // TPWT: corrupt or null price_no_tax.
  for (size_t e = 0; e < num_errors; ++e) {
    int64_t tid = order_tids[rng.NextBounded(order_tids.size())];
    if (touched.count(tid)) continue;
    touched.insert(tid);
    const Relation& order = data.db.relation(kOrder);
    int row = order.RowOfTid(tid);
    double correct = order.tuple(static_cast<size_t>(row)).value(5)
                         .AsDouble();
    if (e % 2 == 0) {
      InjectConflict(&data, &rng, kOrder, tid, 5,
                     Value::Double(correct * (1.4 + rng.NextDouble())));
    } else {
      InjectNull(&data, kOrder, tid, 5);
    }
  }
  // TD: stale client versions (older discount tier, lower lifetime value).
  for (size_t e = 0; e < num_errors; ++e) {
    size_t victim = rng.NextBounded(client_tids.size());
    const Relation& client = data.db.relation(kClient);
    int row = client.RowOfTid(client_tids[victim]);
    const Tuple& current = client.tuple(static_cast<size_t>(row));
    if (touched.count(current.tid)) continue;
    touched.insert(current.tid);
    std::vector<Value> values = current.values;
    values[4] = S("d" + std::to_string(1 + rng.NextBounded(4)));
    values[5] = Value::Double(values[5].AsDouble() / 3.0);
    std::vector<int64_t> timestamps(values.size(), kNoTimestamp);
    timestamps[4] = 500;
    int64_t stale_tid =
        AddRow(&data, kClient, current.eid, values, std::move(timestamps));
    Relation& mut = data.db.relation(kClient);
    Tuple& cur = mut.mutable_tuple(static_cast<size_t>(row));
    if (cur.timestamps.empty()) {
      cur.timestamps.assign(cur.values.size(), kNoTimestamp);
    }
    cur.timestamps[4] = 1500;
    ErrorLogEntry entry;
    entry.type = InjectedError::kStale;
    entry.rel = kClient;
    entry.tid = stale_tid;
    entry.attr = 4;
    entry.tid2 = current.tid;
    entry.clean_value = current.values[4];
    data.errors.push_back(entry);
    touched.insert(stale_tid);
  }

  for (size_t rel = 0; rel < data.db.num_relations(); ++rel) {
    const Relation& relation = data.db.relation(static_cast<int>(rel));
    for (size_t row = 0; row < relation.size(); ++row) {
      int64_t tid = relation.tuple(row).tid;
      if (touched.count(tid) == 0) {
        data.clean_tuples.emplace_back(static_cast<int>(rel), tid);
      }
    }
  }

  data.rule_text =
      "Client(t0) ^ Client(t1) ^ MER(t0[name], t1[name]) ^ "
      "t0.client_id = t1.client_id -> t0.eid = t1.eid\n"
      "Client(t0) ^ Client(t1) ^ t0.company = t1.company -> "
      "t0.region = t1.region\n"
      "Client(t0) ^ Client(t1) ^ t0.eid = t1.eid ^ null(t0.company) ^ "
      "t0.lifetime_value = t1.lifetime_value -> t0.company = t1.company\n"
      "Product(t0) ^ Product(t1) ^ t0.name = t1.name -> t0.brand = t1.brand\n"
      "Client(t0) ^ Client(t1) ^ t0.eid = t1.eid ^ "
      "t0.lifetime_value <= t1.lifetime_value -> t0 <=[discount] t1\n"
      "Client(t0) ^ Client(t1) ^ t0.eid = t1.eid ^ "
      "Mrank(t0, t1, <=[discount]) -> t0 <=[discount] t1\n"
      "Client(t0) ^ Client(t1) ^ t0.eid = t1.eid ^ t0 <[discount] t1 -> "
      "t0.discount = t1.discount\n";
  return data;
}

GeneratedData MakeAppData(const std::string& app,
                          const GeneratorOptions& options) {
  if (app == "Bank") return MakeBankData(options);
  if (app == "Logistics") return MakeLogisticsData(options);
  if (app == "Sales") return MakeSalesData(options);
  ROCK_LOG(kError) << "unknown application " << app << ", using Bank";
  return MakeBankData(options);
}

}  // namespace rock::workload
