#pragma once

#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/kg/graph.h"
#include "src/rules/ree.h"
#include "src/storage/relation.h"

namespace rock::workload {

/// The kind of data-quality defect injected into a cell/tuple; maps 1:1 to
/// the paper's error classes and to the four tasks (duplicates→ER,
/// conflicts→CR, nulls→MI, stale→TD).
enum class InjectedError { kDuplicate, kConflict, kNull, kStale };

const char* InjectedErrorName(InjectedError type);

/// Bookkeeping for one injected error; generators retain the clean value so
/// detection and correction can be scored exactly.
struct ErrorLogEntry {
  InjectedError type;
  int rel = -1;
  int64_t tid = -1;   // corrupted tuple
  int attr = -1;      // corrupted attribute (-1 for duplicates)
  int64_t tid2 = -1;  // duplicates: the original tuple; stale: the current
                      // version's tuple
  Value clean_value;  // the value the cell should hold
};

struct GeneratorOptions {
  /// Base entities per primary table (the generated DB is a few times
  /// larger with duplicates and dependent tables).
  size_t rows = 400;
  /// Fraction of tuples receiving each applicable error channel.
  double error_rate = 0.08;
  uint64_t seed = 20240609;
};

/// A generated application dataset: database (+ optional knowledge graph),
/// the exact injected-error log, the tids of untouched ("clean") tuples
/// usable as initial ground truth Γ, and the application's curated rule
/// set in rule-language text (one rule per line; parse with ParseRules).
struct GeneratedData {
  Database db;
  kg::KnowledgeGraph graph;
  std::vector<ErrorLogEntry> errors;
  std::vector<std::pair<int, int64_t>> clean_tuples;
  std::string rule_text;
};

/// Bank application (paper §6): Customer / Company / Payment relations.
/// Tasks: CNC (customer-name cleaning: typo'd duplicates), CIC (company
/// info conflicts via city→reg_code), TPA (total payment amounts:
/// total = amount + fee + tax, corrupted and nulled), ESClean (all).
GeneratedData MakeBankData(const GeneratorOptions& options);

/// Logistics application: one Shipment relation, consistent but
/// incomplete (many nulls), plus a postal knowledge graph. Tasks:
/// RS (recipient street), RR (residential area), SN (seller names),
/// RClean (all).
GeneratedData MakeLogisticsData(const GeneratorOptions& options);

/// Sales application: Product / Order relations with many numeric
/// attributes. Tasks: CIN (customer info), CCN (company/brand names),
/// TPWT (tax-free price: price_no_tax = price / (1 + tax_rate)),
/// SClean (all).
GeneratedData MakeSalesData(const GeneratorOptions& options);

/// Dispatches by application name ("Bank" / "Logistics" / "Sales").
GeneratedData MakeAppData(const std::string& app,
                          const GeneratorOptions& options);

// ---- Shared corruption helpers (exposed for tests) ----

/// Introduces 1-2 character typos (swap/drop/duplicate) into `text`.
std::string InjectTypo(const std::string& text, Rng* rng);

/// A synthetic person/company name from pools, keyed by entity index so
/// repeated calls for one entity agree.
std::string SyntheticName(size_t entity, bool company);

}  // namespace rock::workload

