#pragma once

#include "src/kg/graph.h"
#include "src/storage/relation.h"

namespace rock::workload {

/// The running example of the paper (Tables 1-3): an e-commerce database
/// with Person / Store / Transaction relations, including the erroneous
/// values printed in bold in the paper, plus a small Wikipedia-like
/// knowledge graph for the MI examples (φ7).
///
/// Schemas:
///   Person(pid, LN, FN, gender, home, status, spouse)
///   Store(sid, name, type, location, accu_sales, area_code)
///   Trans(pid, sid, com, mfg, price, date)
///
/// EIDs: person tuples t1..t5 carry entity ids p1..p4 (as integers
/// 101..104); store tuples s1..s5 use 211..215; transactions 321..325.
/// The ranges are disjoint from the tid space so later inserts (which
/// default to eid = tid) cannot collide with these entities.
struct EcommerceData {
  Database db;
  kg::KnowledgeGraph graph;

  /// Relation indices within db.
  int person = 0;
  int store = 1;
  int trans = 2;

  /// Vertex for the "Huawei Flagship" store in the knowledge graph (it has
  /// a LocationAt edge to "Beijing").
  kg::VertexId huawei_store_vertex = -1;
  /// Vertex for "Nike China" (LocationAt -> "Shanghai").
  kg::VertexId nike_store_vertex = -1;
};

/// Builds the example database. Tuple order matches the paper: Person rows
/// 0..4 = t1..t5, Store rows 0..4 = t6..t10, Trans rows 0..4 = t11..t15.
EcommerceData MakeEcommerceData();

}  // namespace rock::workload

