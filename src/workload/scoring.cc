#include "src/workload/scoring.h"

#include <algorithm>

namespace rock::workload {
namespace {

/// Maps a raw EID to its true entity: identity except for duplicate clones,
/// whose true entity is the original tuple's.
std::map<int64_t, int64_t> TrueEntityMap(const GeneratedData& data) {
  std::map<int64_t, int64_t> out;
  for (const ErrorLogEntry& entry : data.errors) {
    if (entry.type != InjectedError::kDuplicate) continue;
    const Relation& relation = data.db.relation(entry.rel);
    int clone_row = relation.RowOfTid(entry.tid);
    int orig_row = relation.RowOfTid(entry.tid2);
    if (clone_row < 0 || orig_row < 0) continue;
    out[relation.tuple(static_cast<size_t>(clone_row)).eid] =
        relation.tuple(static_cast<size_t>(orig_row)).eid;
  }
  return out;
}

int64_t TrueEntity(const std::map<int64_t, int64_t>& map, int64_t eid) {
  auto it = map.find(eid);
  return it == map.end() ? eid : it->second;
}

}  // namespace

std::set<std::pair<int, int64_t>> TruthTuples(
    const GeneratedData& data, std::optional<InjectedError> only) {
  std::set<std::pair<int, int64_t>> out;
  for (const ErrorLogEntry& entry : data.errors) {
    if (only.has_value() && entry.type != *only) continue;
    out.emplace(entry.rel, entry.tid);
    // Duplicates and stale versions implicate their partner tuple too: a
    // detector legitimately flags the pair.
    if ((entry.type == InjectedError::kDuplicate ||
         entry.type == InjectedError::kStale) &&
        entry.tid2 >= 0) {
      out.emplace(entry.rel, entry.tid2);
    }
  }
  return out;
}

Prf ScoreDetection(const GeneratedData& data,
                   const std::set<std::pair<int, int64_t>>& flagged,
                   std::optional<InjectedError> only) {
  std::set<std::pair<int, int64_t>> truth = TruthTuples(data, only);
  // All truth tuples (any type) for precision accounting: flagging a tuple
  // with some other injected error is not a false positive of this task.
  std::set<std::pair<int, int64_t>> any_truth = TruthTuples(data);
  Prf prf;
  for (const auto& tuple : flagged) {
    if (truth.count(tuple)) {
      ++prf.true_positives;
    } else if (any_truth.count(tuple) == 0) {
      ++prf.false_positives;
    }
  }
  for (const auto& tuple : truth) {
    if (flagged.count(tuple) == 0) ++prf.false_negatives;
  }
  return prf;
}

Prf ScoreDetectionTask(const GeneratedData& data,
                       const std::set<std::pair<int, int64_t>>& flagged,
                       const TaskFilter& task) {
  std::set<std::pair<int, int64_t>> truth;
  for (const ErrorLogEntry& entry : data.errors) {
    if (!task.Matches(entry)) continue;
    truth.emplace(entry.rel, entry.tid);
    if ((entry.type == InjectedError::kDuplicate ||
         entry.type == InjectedError::kStale) &&
        entry.tid2 >= 0) {
      truth.emplace(entry.rel, entry.tid2);
    }
  }
  std::set<std::pair<int, int64_t>> any_truth = TruthTuples(data);
  Prf prf;
  for (const auto& tuple : flagged) {
    if (!task.rels.empty() && task.rels.count(tuple.first) == 0) continue;
    if (truth.count(tuple)) {
      ++prf.true_positives;
    } else if (any_truth.count(tuple) == 0) {
      ++prf.false_positives;
    }
  }
  for (const auto& tuple : truth) {
    if (flagged.count(tuple) == 0) ++prf.false_negatives;
  }
  return prf;
}

CorrectionScore ScoreCorrection(const GeneratedData& data,
                                const chase::ChaseEngine& engine) {
  CorrectionScore score;
  std::map<int64_t, int64_t> true_entities = TrueEntityMap(data);
  const chase::FixStore& fixes = engine.fix_store();

  // Index value-error log entries by cell. A stale version's cell counts
  // as correctable too: overwriting the obsolete value with the current
  // one is TD's "fix" (deduce the latest value).
  std::map<std::tuple<int, int64_t, int>, const ErrorLogEntry*> cell_truth;
  for (const ErrorLogEntry& entry : data.errors) {
    if (entry.type == InjectedError::kConflict ||
        entry.type == InjectedError::kNull ||
        entry.type == InjectedError::kStale) {
      cell_truth[{entry.rel, entry.tid, entry.attr}] = &entry;
    }
  }

  // Precision side 1: cell fixes.
  std::set<std::tuple<int, int64_t, int>> corrected_cells;
  for (const chase::CellFix& fix : engine.CellFixes()) {
    auto it = cell_truth.find({fix.rel, fix.tid, fix.attr});
    bool correct =
        it != cell_truth.end() && fix.new_value == it->second->clean_value;
    if (correct) {
      corrected_cells.insert({fix.rel, fix.tid, fix.attr});
      ++score.overall.true_positives;
      ++score.by_type[it->second->type].true_positives;
    } else {
      ++score.overall.false_positives;
      if (it != cell_truth.end()) {
        ++score.by_type[it->second->type].false_positives;
      } else {
        // A change to a cell with no injected error: attribute it to the
        // conflict channel (an unwarranted repair).
        ++score.by_type[InjectedError::kConflict].false_positives;
      }
    }
  }

  // Precision side 2: EID merges.
  for (const chase::FixRecord& record : fixes.fixes()) {
    if (record.kind != chase::FixRecord::Kind::kMergeEid) continue;
    if (record.rule_id == "Γ") continue;
    if (record.eid_a < 0 || record.eid_b < 0) continue;
    bool correct = TrueEntity(true_entities, record.eid_a) ==
                   TrueEntity(true_entities, record.eid_b);
    if (correct) {
      ++score.overall.true_positives;
      ++score.by_type[InjectedError::kDuplicate].true_positives;
    } else {
      ++score.overall.false_positives;
      ++score.by_type[InjectedError::kDuplicate].false_positives;
    }
  }

  // Recall over the log.
  for (const ErrorLogEntry& entry : data.errors) {
    switch (entry.type) {
      case InjectedError::kDuplicate: {
        const Relation& relation = data.db.relation(entry.rel);
        int clone_row = relation.RowOfTid(entry.tid);
        int orig_row = relation.RowOfTid(entry.tid2);
        bool merged =
            clone_row >= 0 && orig_row >= 0 &&
            fixes.eids().Find(
                relation.tuple(static_cast<size_t>(clone_row)).eid) ==
                fixes.eids().Find(
                    relation.tuple(static_cast<size_t>(orig_row)).eid);
        if (!merged) {
          ++score.overall.false_negatives;
          ++score.by_type[InjectedError::kDuplicate].false_negatives;
        }
        break;
      }
      case InjectedError::kConflict:
      case InjectedError::kNull: {
        if (corrected_cells.count({entry.rel, entry.tid, entry.attr}) == 0) {
          ++score.overall.false_negatives;
          ++score.by_type[entry.type].false_negatives;
        }
        break;
      }
      case InjectedError::kStale: {
        if (corrected_cells.count({entry.rel, entry.tid, entry.attr}) > 0) {
          break;  // corrected by overwriting the obsolete cell
        }
        auto holds = fixes.Holds(entry.rel, entry.attr, entry.tid,
                                 entry.tid2, /*strict=*/false);
        if (holds == std::optional<bool>(true)) {
          ++score.overall.true_positives;
          ++score.by_type[InjectedError::kStale].true_positives;
        } else {
          auto reversed = fixes.Holds(entry.rel, entry.attr, entry.tid2,
                                      entry.tid, /*strict=*/false);
          if (reversed == std::optional<bool>(true)) {
            // Actively wrong ordering.
            ++score.overall.false_positives;
            ++score.by_type[InjectedError::kStale].false_positives;
          }
          ++score.overall.false_negatives;
          ++score.by_type[InjectedError::kStale].false_negatives;
        }
        break;
      }
    }
  }
  return score;
}

}  // namespace rock::workload
