#include "src/detect/detector.h"

#include <algorithm>
#include <atomic>
#include <iterator>
#include <unordered_set>

#include "src/common/hash.h"
#include "src/common/timer.h"
#include "src/ml/lsh.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace rock::detect {
namespace {

struct DetectMetrics {
  obs::Counter* violations;
  obs::Counter* pairfreq_hits;
  obs::Counter* pairfreq_misses;
  obs::Counter* blocked_pairs;
  obs::Counter* exhaustive_pairs;
  obs::Counter* ml_batched_pairs;
  obs::Histogram* rule_seconds;
  obs::Gauge* interner_bytes;
  obs::Gauge* ml_cache_entries;
  obs::Gauge* ml_cache_bytes;

  static const DetectMetrics& Get() {
    static DetectMetrics m = [] {
      obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
      DetectMetrics out;
      out.violations = reg.GetCounter("rock_detect_violations_total");
      out.pairfreq_hits =
          reg.GetCounter("rock_detect_pairfreq_cache_hits_total");
      out.pairfreq_misses =
          reg.GetCounter("rock_detect_pairfreq_cache_misses_total");
      out.blocked_pairs =
          reg.GetCounter("rock_detect_blocked_pairs_checked_total");
      out.exhaustive_pairs =
          reg.GetCounter("rock_detect_exhaustive_pairs_checked_total");
      out.ml_batched_pairs =
          reg.GetCounter("rock_detect_ml_batched_pairs_total");
      out.rule_seconds = reg.GetHistogram("rock_detect_rule_seconds",
                                          obs::LatencyBucketsSeconds());
      out.interner_bytes = reg.GetGauge("rock_interner_bytes");
      reg.SetHelp("rock_interner_bytes",
                  "Peak approximate heap bytes of the per-worker batch "
                  "scratch (interner + token/similarity memos) in the last "
                  "detection; cross-check for per-span alloc_bytes");
      out.ml_cache_entries = reg.GetGauge("rock_detect_ml_cache_entries");
      reg.SetHelp("rock_detect_ml_cache_entries",
                  "Entries in the ML score memo after the last detection");
      out.ml_cache_bytes = reg.GetGauge("rock_detect_ml_cache_bytes");
      reg.SetHelp("rock_detect_ml_cache_bytes",
                  "Approximate heap bytes of the ML score memo after the "
                  "last detection; cross-check for per-span alloc_bytes");
      return out;
    }();
    return m;
  }
};

/// Publishes the memory cross-check gauges after a detection pass.
/// `cache` may be null (batching disabled).
void PublishCacheGauges(const ml::MlScoreCache* cache, size_t scratch_peak) {
  const DetectMetrics& metrics = DetectMetrics::Get();
  metrics.interner_bytes->Set(static_cast<int64_t>(scratch_peak));
  if (cache != nullptr) {
    metrics.ml_cache_entries->Set(static_cast<int64_t>(cache->size()));
    metrics.ml_cache_bytes->Set(static_cast<int64_t>(cache->ApproxBytes()));
  }
}

}  // namespace

using rules::Predicate;
using rules::PredicateKind;
using rules::Ree;
using rules::Valuation;

const char* ErrorClassName(ErrorClass error_class) {
  switch (error_class) {
    case ErrorClass::kDuplicate:
      return "duplicate";
    case ErrorClass::kConflict:
      return "conflict";
    case ErrorClass::kMissing:
      return "missing";
    case ErrorClass::kStale:
      return "stale";
  }
  return "?";
}

std::set<ErrorRecord::Cell> DetectionReport::DirtyCells() const {
  std::set<ErrorRecord::Cell> out;
  for (const ErrorRecord& error : errors) {
    out.insert(error.cells.begin(), error.cells.end());
  }
  return out;
}

std::set<std::pair<int, int64_t>> DetectionReport::DirtyTuples() const {
  std::set<std::pair<int, int64_t>> out;
  for (const ErrorRecord& error : errors) {
    for (const ErrorRecord::Cell& cell : error.cells) {
      out.emplace(cell.rel, cell.tid);
    }
  }
  return out;
}

ErrorDetector::ErrorDetector(rules::EvalContext ctx)
    : ErrorDetector(ctx, DetectorOptions()) {}

ErrorDetector::ErrorDetector(rules::EvalContext ctx, DetectorOptions options)
    : ctx_(ctx), options_(options) {}

ml::MlScoreCache* ErrorDetector::MlCache() const {
  if (!options_.batch_ml_predicates) return nullptr;
  return options_.ml_cache != nullptr ? options_.ml_cache : &ml_scores_;
}

rules::EvalContext ErrorDetector::CachedContext() const {
  rules::EvalContext ctx = ctx_;
  ctx.ml_cache = MlCache();
  return ctx;
}

int ErrorDetector::PairFrequency(int rel, int guard_attr, int cons_attr,
                                 const Value& guard,
                                 const Value& cons) const {
  const auto key = std::make_tuple(rel, guard_attr, cons_attr);
  const uint64_t pair_hash = HashCombine(guard.Hash(), cons.Hash());
  {
    common::MutexLock lock(pair_freq_mu_);
    auto it = pair_freq_.find(key);
    if (it != pair_freq_.end()) {
      DetectMetrics::Get().pairfreq_hits->Add(1);
      auto found = it->second.find(pair_hash);
      return found == it->second.end() ? 0 : found->second;
    }
  }
  // Miss: build the table without holding the lock. The full-relation scan
  // is the expensive part, and holding pair_freq_mu_ across it would
  // serialize every worker behind the first toucher of this (rel, guard,
  // cons) key. The scan reads only the immutable database, so racing
  // builders produce identical tables; the emplace below re-checks under
  // the lock and keeps whichever landed first.
  DetectMetrics::Get().pairfreq_misses->Add(1);
  std::unordered_map<uint64_t, int> table;
  const Relation& relation = ctx_.db->relation(rel);
  for (size_t row = 0; row < relation.size(); ++row) {
    const Value& g = relation.tuple(row).value(guard_attr);
    const Value& c = relation.tuple(row).value(cons_attr);
    if (g.is_null() || c.is_null()) continue;
    table[HashCombine(g.Hash(), c.Hash())]++;
  }
  common::MutexLock lock(pair_freq_mu_);
  auto it = pair_freq_.emplace(key, std::move(table)).first;
  auto found = it->second.find(pair_hash);
  return found == it->second.end() ? 0 : found->second;
}

void ErrorDetector::RecordViolation(const Ree& rule, const Valuation& v,
                                    const rules::Evaluator& eval,
                                    DetectionReport* report) const {
  ++report->violations;
  DetectMetrics::Get().violations->Add(1);
  ErrorRecord record;
  record.rule_id = rule.id;
  const Predicate& p = rule.consequence;
  auto rel_of = [&](int var) {
    return rule.tuple_vars[static_cast<size_t>(var)];
  };
  auto tid_of = [&](int var) { return eval.GetTuple(rule, v, var).tid; };

  // CR-shaped rules guarded by a strict temporal predicate detect
  // obsolete values (an old version differing from the current one): the
  // paper's TD error class.
  bool stale_shape = false;
  if (rule.Task() == rules::RuleTask::kCr) {
    for (const Predicate& q : rule.precondition) {
      if (q.kind == PredicateKind::kTemporal && q.strict) {
        stale_shape = true;
        break;
      }
    }
  }

  switch (rule.Task()) {
    case rules::RuleTask::kEr:
      record.error_class = ErrorClass::kDuplicate;
      record.cells.push_back({rel_of(p.var), tid_of(p.var), -1});
      record.cells.push_back({rel_of(p.var2), tid_of(p.var2), -1});
      break;
    case rules::RuleTask::kCr: {
      // Null consequence cells are missing values; defined-but-violating
      // cells are semantic conflicts.
      bool any_null = false;
      if (p.kind == PredicateKind::kConstant) {
        any_null = eval.GetCell(rule, v, p.var, p.attr).is_null();
        record.cells.push_back({rel_of(p.var), tid_of(p.var), p.attr});
      } else if (p.kind == PredicateKind::kAttrCompare) {
        Value va = eval.GetCell(rule, v, p.var, p.attr);
        Value vb = eval.GetCell(rule, v, p.var2, p.attr2);
        any_null = va.is_null() || vb.is_null();
        if (any_null) {
          // Flag only null cells: the defined side is evidence, not error.
          if (va.is_null()) {
            record.cells.push_back({rel_of(p.var), tid_of(p.var), p.attr});
          }
          if (vb.is_null()) {
            record.cells.push_back(
                {rel_of(p.var2), tid_of(p.var2), p.attr2});
          }
        } else {
          // Majority-side flagging: the side whose (guard value,
          // consequence value) pairing is rarer in the data is the likely
          // error. The guard is the first equality precondition linking
          // the two variables.
          const Predicate* guard = nullptr;
          for (const Predicate& q : rule.precondition) {
            if (q.kind == PredicateKind::kAttrCompare &&
                q.op == rules::CmpOp::kEq && q.attr != rules::kEidAttr &&
                q.var != q.var2) {
              guard = &q;
              break;
            }
          }
          bool flagged_one = false;
          if (guard != nullptr &&
              rel_of(p.var) == rel_of(p.var2)) {
            Value ga = eval.GetCell(rule, v, guard->var, guard->attr);
            Value gb = eval.GetCell(rule, v, guard->var2, guard->attr2);
            if (!ga.is_null() && !gb.is_null()) {
              int fa = PairFrequency(rel_of(p.var), guard->attr, p.attr,
                                     ga, va);
              int fb = PairFrequency(rel_of(p.var2), guard->attr2, p.attr2,
                                     gb, vb);
              if (fa < fb) {
                record.cells.push_back(
                    {rel_of(p.var), tid_of(p.var), p.attr});
                flagged_one = true;
              } else if (fb < fa) {
                record.cells.push_back(
                    {rel_of(p.var2), tid_of(p.var2), p.attr2});
                flagged_one = true;
              }
            }
          }
          if (!flagged_one) {
            record.cells.push_back({rel_of(p.var), tid_of(p.var), p.attr});
            record.cells.push_back(
                {rel_of(p.var2), tid_of(p.var2), p.attr2});
          }
        }
      }
      record.error_class = any_null ? ErrorClass::kMissing
                           : stale_shape ? ErrorClass::kStale
                                         : ErrorClass::kConflict;
      break;
    }
    case rules::RuleTask::kTd:
      record.error_class = ErrorClass::kStale;
      record.cells.push_back({rel_of(p.var), tid_of(p.var), p.attr});
      record.cells.push_back({rel_of(p.var2), tid_of(p.var2), p.attr});
      break;
    case rules::RuleTask::kMi: {
      record.error_class = ErrorClass::kMissing;
      int attr = p.kind == PredicateKind::kPredictValue ? p.attr2 : p.attr;
      record.cells.push_back({rel_of(p.var), tid_of(p.var), attr});
      break;
    }
    case rules::RuleTask::kGeneral:
      record.error_class = ErrorClass::kConflict;
      for (int var : p.TupleVars()) {
        record.cells.push_back({rel_of(var), tid_of(var), -1});
      }
      break;
  }
  report->errors.push_back(std::move(record));
}

bool ErrorDetector::DetectWithBlocking(const Ree& rule,
                                       const rules::Evaluator& eval,
                                       ml::BatchScratch* scratch,
                                       DetectionReport* report) const {
  if (!options_.use_ml_blocking) return false;
  if (rule.tuple_vars.size() != 2 || rule.num_vertex_vars != 0) return false;
  if (rule.tuple_vars[0] != rule.tuple_vars[1]) return false;
  if (ctx_.models == nullptr) return false;

  // Qualify: an ML pair predicate links the variables, and no equality
  // attr-compare between the two variables exists (which would already
  // hash-join).
  const Predicate* ml_pred = nullptr;
  for (const Predicate& p : rule.precondition) {
    if (p.kind == PredicateKind::kMlPair && p.var != p.var2) {
      ml_pred = &p;
    }
    if (p.kind == PredicateKind::kAttrCompare && p.op == rules::CmpOp::kEq &&
        p.var != p.var2 && p.attr != rules::kEidAttr) {
      return false;  // equality join available; indexing beats blocking
    }
  }
  if (ml_pred == nullptr) return false;
  const ml::PairClassifier* model = ctx_.models->FindPair(ml_pred->model);
  if (model == nullptr) return false;

  // Filter: LSH blocking over the ML predicate's attribute tokens.
  int rel = rule.tuple_vars[0];
  const Relation& relation = ctx_.db->relation(rel);
  ml::LshBlocker blocker;
  Valuation v;
  v.rows.assign(2, 0);
  for (size_t row = 0; row < relation.size(); ++row) {
    v.rows[0] = static_cast<int>(row);
    std::vector<Value> values;
    for (int attr : ml_pred->attrs_b) {
      values.push_back(eval.GetCell(rule, v, 0, attr));
    }
    blocker.Add(static_cast<int64_t>(row), model->BlockTokens(values));
  }

  // Materialize the candidate pairs (the block) in verify order.
  std::vector<std::pair<int, int>> pairs;
  for (size_t row = 0; row < relation.size(); ++row) {
    v.rows[0] = static_cast<int>(row);
    std::vector<Value> values;
    for (int attr : ml_pred->attrs_a) {
      values.push_back(eval.GetCell(rule, v, 0, attr));
    }
    for (int64_t candidate : blocker.Candidates(model->BlockTokens(values))) {
      if (candidate == static_cast<int64_t>(row)) continue;
      pairs.emplace_back(static_cast<int>(row), static_cast<int>(candidate));
    }
  }

  // Batch pre-pass: score the block's uncached ML pairs with one
  // ScoreBatch per model, so the verify loop's Satisfies calls hit the
  // memo. The memoized doubles are exactly what the scalar path computes,
  // so the verify outcome is unchanged.
  ml::MlScoreCache* cache = eval.context().ml_cache;
  if (cache != nullptr && scratch != nullptr) {
    std::vector<const Predicate*> ml_preds;
    for (const Predicate& p : rule.precondition) {
      if (p.kind == PredicateKind::kMlPair) ml_preds.push_back(&p);
    }
    std::unordered_set<ml::MlScoreCache::Key, ml::MlScoreCache::KeyHash>
        queued;
    struct Pending {
      const ml::PairClassifier* pending_model = nullptr;
      ml::PairBatch batch;
      std::vector<ml::MlScoreCache::Key> keys;
    };
    std::map<std::string, Pending> pending;
    size_t pending_pairs = 0;
    size_t scored = 0;
    std::vector<double> scores;
    auto flush = [&] {
      for (auto& [name, entry] : pending) {
        if (entry.batch.empty()) continue;
        entry.pending_model->ScoreBatch(entry.batch, scratch, &scores);
        cache->InsertBatch(entry.keys, scores);
        scored += scores.size();
        entry.batch.Clear();
        entry.keys.clear();
      }
      pending_pairs = 0;
    };
    for (const auto& [row, candidate] : pairs) {
      v.rows[0] = row;
      v.rows[1] = candidate;
      for (const Predicate* p : ml_preds) {
        const ml::PairClassifier* pair_model =
            ctx_.models->FindPair(p->model);
        if (pair_model == nullptr) continue;
        std::vector<Value> a, b;
        a.reserve(p->attrs_a.size());
        b.reserve(p->attrs_b.size());
        for (int attr : p->attrs_a) {
          a.push_back(eval.GetCell(rule, v, p->var, attr));
        }
        for (int attr : p->attrs_b) {
          b.push_back(eval.GetCell(rule, v, p->var2, attr));
        }
        const ml::MlScoreCache::Key key =
            ml::MlScoreCache::MakeKey(p->model, a, b);
        if (!queued.insert(key).second) continue;
        if (cache->Contains(key)) continue;
        Pending& entry = pending[p->model];
        entry.pending_model = pair_model;
        entry.batch.Add(std::move(a), std::move(b));
        entry.keys.push_back(key);
        // Bound pre-pass memory on huge blocks.
        if (++pending_pairs >= 4096) flush();
      }
    }
    flush();
    DetectMetrics::Get().ml_batched_pairs->Add(scored);
  }

  // Verify: evaluate the full precondition on candidate pairs only.
  for (const auto& [row, candidate] : pairs) {
    v.rows[0] = row;
    v.rows[1] = candidate;
    ++report->blocked_pairs_checked;
    if (!eval.SatisfiesPrecondition(rule, v)) continue;
    if (!eval.Satisfies(rule, v, rule.consequence)) {
      RecordViolation(rule, v, eval, report);
    }
  }
  return true;
}

void ErrorDetector::DetectRule(const Ree& rule, const rules::Evaluator& eval,
                               DetectionReport* report) const {
  eval.ForEachViolation(rule, [&](const Valuation& v) {
    RecordViolation(rule, v, eval, report);
    return true;
  });
}

DetectionReport ErrorDetector::Detect(
    const std::vector<Ree>& rules) const {
  ROCK_OBS_SPAN("detect.batch");
  const DetectMetrics& metrics = DetectMetrics::Get();
  DetectionReport report;
  rules::Evaluator eval(CachedContext());
  ml::BatchScratch scratch;
  size_t scratch_peak = 0;
  for (const Ree& rule : rules) {
    Timer timer;
    if (!DetectWithBlocking(rule, eval, &scratch, &report)) {
      // Warm the score memo with one batch per model before the per-pair
      // enumeration; misses inside DetectRule still score-and-insert.
      metrics.ml_batched_pairs->Add(eval.WarmMlCache(rule, &scratch));
      DetectRule(rule, eval, &report);
    }
    scratch_peak = std::max(scratch_peak, scratch.ApproxBytes());
    scratch.Reset();
    metrics.rule_seconds->Observe(timer.ElapsedSeconds());
  }
  metrics.blocked_pairs->Add(report.blocked_pairs_checked);
  metrics.exhaustive_pairs->Add(report.exhaustive_pairs_checked);
  PublishCacheGauges(MlCache(), scratch_peak);
  return report;
}

DetectionReport ErrorDetector::DetectIncremental(
    const std::vector<Ree>& rules,
    const std::vector<std::pair<int, int64_t>>& dirty) const {
  ROCK_OBS_SPAN("detect.incremental");
  DetectionReport report;
  rules::Evaluator eval(CachedContext());
  ml::BatchScratch scratch;
  std::set<std::vector<int>> seen;
  for (const Ree& rule : rules) {
    seen.clear();
    for (size_t var = 0; var < rule.tuple_vars.size(); ++var) {
      int rel = rule.tuple_vars[var];
      for (const auto& [drel, dtid] : dirty) {
        if (drel != rel) continue;
        int row = ctx_.db->relation(rel).RowOfTid(dtid);
        if (row < 0) continue;
        DetectMetrics::Get().ml_batched_pairs->Add(eval.WarmMlCache(
            rule, &scratch, static_cast<int>(var), row));
        eval.ForEachSatisfying(
            rule,
            [&](const Valuation& v) {
              if (!seen.insert(v.rows).second) return true;
              if (!eval.Satisfies(rule, v, rule.consequence)) {
                RecordViolation(rule, v, eval, &report);
              }
              return true;
            },
            static_cast<int>(var), row);
      }
    }
    scratch.Reset();
  }
  return report;
}

void ErrorDetector::WarmRanges(const Ree& rule,
                               const std::vector<par::WorkUnit::Range>& ranges,
                               const rules::Evaluator& eval,
                               ml::BatchScratch* scratch) const {
  ml::MlScoreCache* cache = eval.context().ml_cache;
  if (cache == nullptr || scratch == nullptr || ctx_.models == nullptr) {
    return;
  }
  if (rule.num_vertex_vars != 0) return;
  std::vector<const Predicate*> ml_preds;
  std::vector<const Predicate*> non_ml;
  for (const Predicate& p : rule.precondition) {
    if (p.kind == PredicateKind::kMlPair) {
      ml_preds.push_back(&p);
    } else {
      non_ml.push_back(&p);
    }
  }
  if (ml_preds.empty()) return;

  struct Pending {
    const ml::PairClassifier* pending_model = nullptr;
    ml::PairBatch batch;
    std::vector<ml::MlScoreCache::Key> keys;
  };
  std::map<std::string, Pending> pending;
  std::unordered_set<ml::MlScoreCache::Key, ml::MlScoreCache::KeyHash> queued;
  size_t pending_pairs = 0;
  size_t scored = 0;
  std::vector<double> scores;
  auto flush = [&] {
    for (auto& [name, entry] : pending) {
      if (entry.batch.empty()) continue;
      entry.pending_model->ScoreBatch(entry.batch, scratch, &scores);
      cache->InsertBatch(entry.keys, scores);
      scored += scores.size();
      entry.batch.Clear();
      entry.keys.clear();
    }
    pending_pairs = 0;
  };

  Valuation v;
  v.rows.assign(rule.tuple_vars.size(), 0);
  v.vertices.clear();
  std::function<void(size_t)> recurse = [&](size_t var) {
    if (var == rule.tuple_vars.size()) {
      // Collect ML pairs only for valuations passing every non-ML
      // predicate: a superset of the pairs the real pass scores (which
      // short-circuits in precondition order), minus those where a later
      // non-ML predicate fails — the latter just fall back to per-pair
      // scoring on their cache miss.
      for (const Predicate* p : non_ml) {
        if (!eval.Satisfies(rule, v, *p)) return;
      }
      for (const Predicate* p : ml_preds) {
        const ml::PairClassifier* pair_model =
            ctx_.models->FindPair(p->model);
        if (pair_model == nullptr) continue;
        std::vector<Value> a, b;
        a.reserve(p->attrs_a.size());
        b.reserve(p->attrs_b.size());
        for (int attr : p->attrs_a) {
          a.push_back(eval.GetCell(rule, v, p->var, attr));
        }
        for (int attr : p->attrs_b) {
          b.push_back(eval.GetCell(rule, v, p->var2, attr));
        }
        const ml::MlScoreCache::Key key =
            ml::MlScoreCache::MakeKey(p->model, a, b);
        if (!queued.insert(key).second) continue;
        if (cache->Contains(key)) continue;
        Pending& entry = pending[p->model];
        entry.pending_model = pair_model;
        entry.batch.Add(std::move(a), std::move(b));
        entry.keys.push_back(key);
        if (++pending_pairs >= 4096) flush();
      }
      return;
    }
    for (int row = ranges[var].begin; row < ranges[var].end; ++row) {
      v.rows[var] = row;
      recurse(var + 1);
    }
  };
  recurse(0);
  flush();
  DetectMetrics::Get().ml_batched_pairs->Add(scored);
}

void ErrorDetector::DetectRuleInRanges(
    const Ree& rule, const std::vector<par::WorkUnit::Range>& ranges,
    const rules::Evaluator& eval, ml::BatchScratch* scratch,
    DetectionReport* report) const {
  // Block-local nested-loop evaluation — the HyperCube executor's unit
  // body. Correctness comes from covering every block combination.
  if (rule.num_vertex_vars == 0) {
    WarmRanges(rule, ranges, eval, scratch);
  }
  Valuation v;
  v.rows.assign(rule.tuple_vars.size(), 0);
  v.vertices.assign(static_cast<size_t>(rule.num_vertex_vars), -1);

  std::function<void(size_t)> recurse = [&](size_t var) {
    if (var == rule.tuple_vars.size()) {
      ++report->exhaustive_pairs_checked;
      if (eval.SatisfiesPrecondition(rule, v) &&
          !eval.Satisfies(rule, v, rule.consequence)) {
        RecordViolation(rule, v, eval, report);
      }
      return;
    }
    for (int row = ranges[var].begin; row < ranges[var].end; ++row) {
      v.rows[var] = row;
      recurse(var + 1);
    }
  };
  if (rule.num_vertex_vars == 0) recurse(0);
}

DetectionReport ErrorDetector::DetectParallel(
    const std::vector<Ree>& rules, int num_workers,
    par::ScheduleReport* schedule) const {
  ROCK_OBS_SPAN("detect.parallel");
  std::vector<par::WorkUnit> units;
  for (size_t r = 0; r < rules.size(); ++r) {
    std::vector<par::WorkUnit> rule_units = par::BuildHyperCubeUnits(
        *ctx_.db, static_cast<int>(r), rules[r].tuple_vars,
        options_.block_rows);
    units.insert(units.end(), rule_units.begin(), rule_units.end());
  }

  par::PoolOptions pool_options;
  pool_options.retry = options_.retry;
  pool_options.fault_plan = options_.fault_plan;
  par::WorkerPool pool(num_workers, options_.execution_mode, pool_options);
  // One evaluator and batch scratch per worker (the evaluator caches
  // equality indexes; the scratch is not thread-safe) and one report per
  // unit: workers share only the sharded ML score memo, whose content-
  // keyed first-insert-wins entries are value-identical no matter which
  // worker lands first, and merging reports in unit order makes the result
  // independent of worker count and stealing.
  const rules::EvalContext cached_ctx = CachedContext();
  std::vector<rules::Evaluator> evals;
  evals.reserve(static_cast<size_t>(pool.num_workers()));
  for (int w = 0; w < pool.num_workers(); ++w) evals.emplace_back(cached_ctx);
  std::vector<ml::BatchScratch> scratches(
      static_cast<size_t>(pool.num_workers()));
  std::vector<DetectionReport> unit_reports(units.size());
  std::atomic<size_t> scratch_peak{0};
  auto unit_body = [&](const par::WorkUnit& u, size_t unit_index,
                       int worker) {
    unit_reports[unit_index] = DetectionReport();  // replay overwrites
    ml::BatchScratch& scratch = scratches[static_cast<size_t>(worker)];
    DetectRuleInRanges(rules[static_cast<size_t>(u.rule_index)], u.ranges,
                       evals[static_cast<size_t>(worker)], &scratch,
                       &unit_reports[unit_index]);
    size_t bytes = scratch.ApproxBytes();
    size_t seen = scratch_peak.load(std::memory_order_relaxed);
    while (bytes > seen &&
           !scratch_peak.compare_exchange_weak(seen, bytes,
                                               std::memory_order_relaxed)) {
    }
    scratch.Reset();
  };
  par::ScheduleReport local = pool.Execute(units, unit_body);
  // Recovery: units abandoned under an injected fault plan re-run serially
  // into their (still empty) per-unit reports; the unit-order merge below
  // then yields the same report as the fault-free run.
  size_t recovered = par::WorkerPool::ReplayUnrecovered(units, &local,
                                                        unit_body);
  if (recovered > 0) {
    obs::MetricsRegistry::Global()
        .GetCounter("rock_detect_recovered_units_total")
        ->Add(recovered);
  }
  if (schedule != nullptr) *schedule = local;

  DetectionReport report;
  for (DetectionReport& unit_report : unit_reports) {
    report.violations += unit_report.violations;
    report.blocked_pairs_checked += unit_report.blocked_pairs_checked;
    report.exhaustive_pairs_checked += unit_report.exhaustive_pairs_checked;
    std::move(unit_report.errors.begin(), unit_report.errors.end(),
              std::back_inserter(report.errors));
  }
  const DetectMetrics& metrics = DetectMetrics::Get();
  metrics.blocked_pairs->Add(report.blocked_pairs_checked);
  metrics.exhaustive_pairs->Add(report.exhaustive_pairs_checked);
  PublishCacheGauges(MlCache(), scratch_peak.load(std::memory_order_relaxed));
  return report;
}

}  // namespace rock::detect
