#pragma once

#include <cstdint>
#include <map>
#include <tuple>
#include <unordered_map>
#include <set>
#include <string>
#include <vector>

#include "src/common/mutex.h"
#include "src/par/executor.h"
#include "src/rules/eval.h"
#include "src/rules/ree.h"

namespace rock::detect {

/// The error classes Rock reports (paper §3 "Error detection": duplicates,
/// semantic inconsistencies, obsolete values and missing values).
enum class ErrorClass { kDuplicate, kConflict, kMissing, kStale };

const char* ErrorClassName(ErrorClass error_class);

/// One detected error: a violation of one rule, localized to cells.
struct ErrorRecord {
  ErrorClass error_class;
  std::string rule_id;
  /// Cells implicated by the violated consequence; attr = -1 denotes the
  /// whole tuple (duplicates).
  struct Cell {
    int rel = -1;
    int64_t tid = -1;
    int attr = -1;
    bool operator<(const Cell& o) const {
      return std::tie(rel, tid, attr) < std::tie(o.rel, o.tid, o.attr);
    }
    bool operator==(const Cell& o) const {
      return rel == o.rel && tid == o.tid && attr == o.attr;
    }
  };
  std::vector<Cell> cells;
};

struct DetectionReport {
  std::vector<ErrorRecord> errors;
  /// Raw violation count (several violations may implicate the same cell).
  size_t violations = 0;
  /// Valuations whose ML predicates were evaluated via the blocking filter
  /// vs. exhaustively (for the §5.4 filter-and-verify accounting).
  size_t blocked_pairs_checked = 0;
  size_t exhaustive_pairs_checked = 0;

  /// Distinct implicated cells.
  std::set<ErrorRecord::Cell> DirtyCells() const;
  /// Distinct implicated (rel, tid) tuples.
  std::set<std::pair<int, int64_t>> DirtyTuples() const;
};

struct DetectorOptions {
  /// Filter-and-verify for ML pair predicates (paper §5.4): when a rule's
  /// only link between its two variables is an ML predicate, candidate
  /// pairs come from an LSH blocking index instead of the cross product.
  bool use_ml_blocking = true;
  /// Rows per virtual block for HyperCube partitioning (parallel mode).
  int block_rows = 512;
  /// How DetectParallel runs its work units: real worker threads (the
  /// production path) or the deterministic simulated-time schedule used by
  /// the speedup-shape benches.
  par::ExecutionMode execution_mode = par::ExecutionMode::kThreads;
  /// Deterministic fault schedule injected into DetectParallel's pool (not
  /// owned; nullptr disables injection). Units the pool abandons are
  /// replayed serially into their own per-unit reports before the unit-
  /// order merge, so the detection report matches the fault-free run.
  const par::FaultPlan* fault_plan = nullptr;
  /// Retry discipline for the pool when a fault plan is set.
  par::RetryPolicy retry;
  /// Batched ML predicate evaluation: each (rule, block) warms a shared
  /// score memo with one ScoreBatch per model before verification, and
  /// Satisfies then hits the memo instead of re-scoring per pair. Cached
  /// scores are the exact doubles the scalar path computes, so reports are
  /// bitwise identical with this on or off.
  bool batch_ml_predicates = true;
  /// External ML score cache to use instead of the detector's own (not
  /// owned). Lets tests pre-seed or share the memo across detectors.
  ml::MlScoreCache* ml_cache = nullptr;
};

/// Error detection (paper §3): violations of REE++s in Σ, batch and
/// incremental, with data-partitioned parallelism via HyperCube work units.
class ErrorDetector {
 public:
  explicit ErrorDetector(rules::EvalContext ctx);
  ErrorDetector(rules::EvalContext ctx, DetectorOptions options);

  /// Batch detection over the full database.
  DetectionReport Detect(const std::vector<rules::Ree>& rules) const;

  /// Incremental detection: only violations whose valuation touches a
  /// tuple in `dirty` (ΔD) are reported.
  DetectionReport DetectIncremental(
      const std::vector<rules::Ree>& rules,
      const std::vector<std::pair<int, int64_t>>& dirty) const;

  /// Parallel detection: HyperCube units executed under the worker pool
  /// (threaded or simulated per DetectorOptions::execution_mode); fills
  /// `schedule` with the placement/stealing accounting used by the
  /// scalability benches. Each unit accumulates into its own report and the
  /// per-unit reports are merged in unit order, so the result is bitwise
  /// identical for every worker count and both execution modes, and covers
  /// the same dirty cells as Detect().
  DetectionReport DetectParallel(const std::vector<rules::Ree>& rules,
                                 int num_workers,
                                 par::ScheduleReport* schedule) const;

 private:
  // ROCK_ANALYZE(unguarded-ok: set at construction, read-only afterwards)
  rules::EvalContext ctx_;
  DetectorOptions options_;
  // Lazy (rel, guard attr, consequence attr) -> pair-frequency table used
  // by majority-side flagging of CR violations. Guarded by pair_freq_mu_:
  // DetectParallel's worker threads reach it through RecordViolation. On a
  // miss the table is scanned OUTSIDE the lock (building it is the
  // expensive part and the scan is a pure read of the immutable database);
  // the insert re-checks under the lock and the first emplace wins.
  mutable common::Mutex pair_freq_mu_;
  mutable std::map<std::tuple<int, int, int>,
                   std::unordered_map<uint64_t, int>>
      pair_freq_ ROCK_GUARDED_BY(pair_freq_mu_);

  // The ML-score counterpart of pair_freq_: a memo shared by every rule
  // (and every DetectParallel worker) that caches PairClassifier scores by
  // (model, pair-content) hash. Same double-checked discipline — lookup
  // under a (shard) lock, score outside any lock, first insert wins — but
  // sharded inside MlScoreCache because workers hit it far more often.
  // ROCK_ANALYZE(unguarded-ok: internally synchronized by MlScoreCache shard locks)
  mutable ml::MlScoreCache ml_scores_;

  /// The active score memo: the external override, the detector's own, or
  /// nullptr when batching is disabled.
  ml::MlScoreCache* MlCache() const;
  /// ctx_ with the active memo attached.
  rules::EvalContext CachedContext() const;

  /// Frequency of (guard value, consequence value) among rel's tuples.
  int PairFrequency(int rel, int guard_attr, int cons_attr,
                    const Value& guard, const Value& cons) const;

  void RecordViolation(const rules::Ree& rule, const rules::Valuation& v,
                       const rules::Evaluator& eval,
                       DetectionReport* report) const;
  void DetectRule(const rules::Ree& rule, const rules::Evaluator& eval,
                  DetectionReport* report) const;
  /// Blocking-accelerated path for two-variable ML rules; returns false
  /// when the rule does not qualify (caller falls back to DetectRule).
  /// With a score memo active and `scratch` non-null, the candidate pairs
  /// are batch-scored per model before the verify loop.
  bool DetectWithBlocking(const rules::Ree& rule,
                          const rules::Evaluator& eval,
                          ml::BatchScratch* scratch,
                          DetectionReport* report) const;
  void DetectRuleInRanges(const rules::Ree& rule,
                          const std::vector<par::WorkUnit::Range>& ranges,
                          const rules::Evaluator& eval,
                          ml::BatchScratch* scratch,
                          DetectionReport* report) const;
  /// Batch pre-pass for DetectRuleInRanges: scores the block's uncached ML
  /// pairs (valuations passing every non-ML predicate) with one ScoreBatch
  /// per model.
  void WarmRanges(const rules::Ree& rule,
                  const std::vector<par::WorkUnit::Range>& ranges,
                  const rules::Evaluator& eval,
                  ml::BatchScratch* scratch) const;
};

}  // namespace rock::detect

