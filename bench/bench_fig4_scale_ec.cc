// Reproduces Figure 4(l): parallel scalability of error correction on the
// Logistics workload, varying the number of workers n = 4..20.
//
// Paper shape: Rock's chase is parallelly scalable; 3.12× faster at n=20
// than at n=4. The first (dominant) chase round is partitioned into
// HyperCube work units executed under the worker pool; see Fig 4(h) and
// DESIGN.md for the measurement methodology.

#include <thread>

#include "bench/bench_common.h"
#include "bench/bench_telemetry.h"

namespace rock::bench {
namespace {

par::ScheduleReport RunOnce(int workers, par::ExecutionMode mode) {
  // Fresh data per configuration: the chase mutates its fix store.
  AppContext app = MakeApp("Logistics", 400);
  RockSetup setup = PrepareRock(app, core::Variant::kRock);
  chase::ChaseEngine engine(&app.data.db, &app.data.graph,
                            setup.rock->models());
  for (const auto& [rel, tid] : app.data.clean_tuples) {
    Status ignored = engine.fix_store().AddGroundTruthTuple(rel, tid);
    (void)ignored;
  }
  par::ScheduleReport schedule;
  engine.RunParallel(setup.rules, workers, /*block_rows=*/64, &schedule,
                     mode);
  return schedule;
}

void Run() {
  BenchTelemetry telemetry("fig4_scale_ec");
  Timer total;
  Timer phase;
  std::printf("-- simulated schedule (deterministic curve shape) --\n");
  std::printf("%8s %14s %14s %10s %8s\n", "workers", "makespan(s)",
              "serial(s)", "speedup", "stolen");
  double t4 = 0.0, t20 = 0.0;
  for (int workers : {4, 8, 12, 16, 20}) {
    par::ScheduleReport schedule =
        RunOnce(workers, par::ExecutionMode::kSimulated);
    telemetry.AddSchedule("simulated/w" + std::to_string(workers),
                          schedule);
    std::printf("%8d %14.4f %14.4f %9.2fx %8d\n", workers,
                schedule.makespan_seconds, schedule.serial_seconds,
                schedule.speedup(), schedule.stolen_units);
    if (workers == 4) t4 = schedule.makespan_seconds;
    if (workers == 20) t20 = schedule.makespan_seconds;
  }
  double scaling = t20 > 0 ? t4 / t20 : 0.0;
  telemetry.AddResult("simulated_speedup_n4_to_n20", scaling);
  telemetry.AddPhase("simulated", phase.ElapsedSeconds());
  phase.Reset();
  std::printf("\nSpeedup from n=4 to n=20: %.2fx (paper reports 3.12x)\n",
              scaling);

  std::printf(
      "\n-- threaded execution (measured wall-clock; host has %u cores) "
      "--\n",
      std::thread::hardware_concurrency());
  std::printf("%8s %14s %14s %12s %12s %8s\n", "workers", "wall(s)",
              "serial(s)", "measured", "simulated", "stolen");
  for (int workers : {1, 2, 4, 8}) {
    par::ScheduleReport schedule =
        RunOnce(workers, par::ExecutionMode::kThreads);
    telemetry.AddSchedule("threads/w" + std::to_string(workers), schedule);
    std::printf("%8d %14.4f %14.4f %11.2fx %11.2fx %8d\n", workers,
                schedule.wall_seconds, schedule.serial_seconds,
                schedule.measured_speedup(), schedule.speedup(),
                schedule.stolen_units);
  }
  telemetry.AddPhase("threaded", phase.ElapsedSeconds());
  telemetry.AddPhase("total", total.ElapsedSeconds());
  telemetry.Emit();
}

}  // namespace
}  // namespace rock::bench

int main(int argc, char** argv) {
  rock::bench::ServeGuard serve(&argc, argv);
  rock::bench::PrintHeader(
      "Figure 4(l)", "Logistics-EC parallel scalability, n = 4..20 workers");
  rock::bench::Run();
  return 0;
}
