// Microbenchmarks for the design claims of §5:
//  (a) Crystal's consistent hashing minimizes remapped keys on membership
//      change (§5.1): remap ratio ≈ 1/(n+1) when adding the (n+1)-th node;
//  (b) filter-and-verify blocking makes ML predicates affordable (§5.4):
//      candidate pairs checked with vs without LSH blocking;
//  (c) sampling-based discovery respects the Hoeffding accuracy bound
//      (§5.2): measured support-estimate error vs epsilon;
//  (d) incremental detection beats batch re-detection on small ΔD (§3);
//  (e) FDX-style predicate pruning cuts discovery candidates (§5.4);
//  (f) discovery sampling trades a bounded accuracy loss for speed (§5.2).

#include "bench/bench_common.h"

#include "src/crystal/object_store.h"
#include "src/discovery/evidence.h"
#include "src/discovery/miner.h"

namespace rock::bench {
namespace {

void CrystalRemap() {
  std::printf("\n(a) Crystal remap ratio on node join (expect ~1/(n+1))\n");
  std::printf("%8s %12s %12s\n", "nodes", "measured", "expected");
  crystal::ObjectStore store(/*virtual_nodes=*/128, /*block_size=*/64);
  Status ignored = store.AddNode("node-0");
  (void)ignored;
  Rng rng(5);
  for (int i = 0; i < 400; ++i) {
    std::string payload(64 + rng.NextBounded(512), 'x');
    ignored = store.Put("object-" + std::to_string(i), payload);
  }
  for (int n = 1; n <= 8; ++n) {
    auto stats = store.AddNodeWithRebalance("node-" + std::to_string(n));
    if (!stats.ok()) continue;
    std::printf("%5d->%-2d %12.3f %12.3f\n", n, n + 1,
                stats->remap_ratio(), 1.0 / (n + 1));
  }
}

void BlockingFilter() {
  std::printf("\n(b) ML-predicate blocking (filter-and-verify, §5.4)\n");
  AppContext app = MakeApp("Logistics", 500);
  RockSetup setup = PrepareRock(app, core::Variant::kRock);
  // A pure-ML matching rule (no equality join): its cost is governed
  // entirely by blocking.
  std::vector<rules::Ree> ml_rules;
  {
    auto rule = rules::ParseRee(
        "Shipment(t0) ^ Shipment(t1) ^ MER(t0[recipient], t1[recipient]) "
        "-> t0.eid = t1.eid",
        app.data.db.schema());
    if (rule.ok()) {
      rule->id = "ml_only_er";
      ml_rules.push_back(std::move(*rule));
    }
  }
  rules::EvalContext ctx;
  ctx.db = &app.data.db;
  ctx.graph = &app.data.graph;
  ctx.models = setup.rock->models();

  detect::DetectorOptions with_options;
  with_options.use_ml_blocking = true;
  detect::ErrorDetector with_blocking(ctx, with_options);
  Timer t1;
  auto report_with = with_blocking.Detect(ml_rules);
  double with_time = t1.ElapsedSeconds();

  detect::DetectorOptions without_options;
  without_options.use_ml_blocking = false;
  detect::ErrorDetector without_blocking(ctx, without_options);
  Timer t2;
  auto report_without = without_blocking.Detect(ml_rules);
  double without_time = t2.ElapsedSeconds();

  size_t n = app.data.db.relation(0).size();
  std::printf("rows=%zu; full cross product = %zu pairs\n", n, n * (n - 1));
  std::printf("with blocking:    %8.3fs, %zu candidate pairs verified, "
              "%zu violations\n", with_time,
              report_with.blocked_pairs_checked, report_with.violations);
  std::printf("without blocking: %8.3fs, %zu violations\n", without_time,
              report_without.violations);
  // The guarantee that matters (§5.4): TRUE matching pairs land in the
  // candidate set with high probability. Measure recall over the injected
  // duplicate pairs (the genuine matches), not over every loose-threshold
  // model firing.
  auto flagged = report_with.DirtyTuples();
  size_t dup_total = 0, dup_found = 0;
  for (const auto& entry : app.data.errors) {
    if (entry.type != workload::InjectedError::kDuplicate) continue;
    ++dup_total;
    if (flagged.count({entry.rel, entry.tid}) > 0 &&
        flagged.count({entry.rel, entry.tid2}) > 0) {
      ++dup_found;
    }
  }
  std::printf("true-match recall through the filter: %zu/%zu\n", dup_found,
              dup_total);
}

void SamplingBound() {
  std::printf("\n(c) Sampling accuracy bound (Hoeffding, §5.2)\n");
  AppContext app = MakeApp("Logistics", 400);
  rules::EvalContext ctx;
  ctx.db = &app.data.db;
  rules::Evaluator eval(ctx);
  discovery::PredicateSpaceOptions space_options;
  space_options.max_constants_per_attr = 0;
  auto space = discovery::BuildPairSpace(app.data.db, 0, space_options);

  Rng rng(11);
  discovery::EvidenceTable full =
      discovery::EvidenceTable::Build(eval, space, 0, &rng);
  double epsilon = 0.02, delta = 0.05;
  size_t m = discovery::HoeffdingSampleSize(epsilon, delta);
  discovery::EvidenceTable sample =
      discovery::EvidenceTable::Build(eval, space, m, &rng);
  std::printf("epsilon=%.3f delta=%.3f -> sample size >= %zu "
              "(full: %zu rows, sampled: %zu rows)\n",
              epsilon, delta, m, full.num_rows(), sample.num_rows());
  // Compare single-predicate support estimates.
  int checked = 0, within = 0;
  double worst = 0.0;
  for (size_t p = 0; p < space.predicates.size(); ++p) {
    double exact = static_cast<double>(full.CountAll({static_cast<int>(p)})) /
                   static_cast<double>(full.num_rows());
    double estimate =
        static_cast<double>(sample.CountAll({static_cast<int>(p)})) /
        static_cast<double>(sample.num_rows());
    double err = std::abs(exact - estimate);
    worst = std::max(worst, err);
    ++checked;
    if (err <= epsilon) ++within;
  }
  std::printf("%d/%d predicate supports within epsilon; worst error "
              "%.4f\n", within, checked, worst);
}

void IncrementalDetection() {
  std::printf("\n(d) Incremental vs batch detection on small ΔD\n");
  AppContext app = MakeApp("Logistics", 500);
  RockSetup setup = PrepareRock(app, core::Variant::kRock);

  Timer batch_timer;
  setup.rock->DetectErrors(setup.rules);
  double batch_time = batch_timer.ElapsedSeconds();

  // ΔD: 10 new shipments, one of them violating zip->area.
  std::vector<std::pair<int, int64_t>> dirty;
  const Relation& shipment = app.data.db.relation(0);
  for (int i = 0; i < 10; ++i) {
    Tuple t = shipment.tuple(static_cast<size_t>(i));
    t.tid = -1;
    t.eid = -1;
    if (i == 0) t.values[3] = Value::String("WrongArea");
    auto tid = app.data.db.Insert(0, t);
    if (tid.ok()) dirty.emplace_back(0, *tid);
  }
  Timer inc_timer;
  auto report = setup.rock->DetectErrorsIncremental(setup.rules, dirty);
  double inc_time = inc_timer.ElapsedSeconds();
  std::printf("batch: %8.3fs   incremental(|ΔD|=10): %8.3fs   "
              "(%.1fx faster), %zu violations on the delta\n",
              batch_time, inc_time,
              inc_time > 0 ? batch_time / inc_time : 0.0,
              report.violations);
}

void FdxPruningAblation() {
  std::printf("\n(e) FDX-style predicate pruning (§5.4)\n");
  AppContext app = MakeApp("Bank", 300);
  rules::EvalContext ctx;
  ctx.db = &app.data.db;
  rules::Evaluator eval(ctx);
  discovery::PredicateSpaceOptions space_options;
  space_options.max_constants_per_attr = 2;

  for (double threshold : {0.0, 0.02, 0.1}) {
    discovery::MinerOptions miner_options;
    miner_options.fdx_min_correlation = threshold;
    miner_options.max_evidence_rows = 40000;
    discovery::RuleMiner miner(miner_options);
    Timer timer;
    size_t mined = 0;
    for (size_t rel = 0; rel < app.data.db.num_relations(); ++rel) {
      auto space = discovery::BuildPairSpace(
          app.data.db, static_cast<int>(rel), space_options);
      mined += miner.Mine(eval, space).size();
    }
    std::printf("fdx>=%.2f: %8.3fs, %5zu candidates explored, %4zu pruned, "
                "%3zu rules\n", threshold, timer.ElapsedSeconds(),
                miner.candidates_explored(), miner.candidates_pruned(),
                mined);
  }
}

void SamplingAblation() {
  std::printf("\n(f) Discovery sampling ablation (§5.2)\n");
  AppContext app = MakeApp("Logistics", 400);
  rules::EvalContext ctx;
  ctx.db = &app.data.db;
  rules::Evaluator eval(ctx);
  discovery::PredicateSpaceOptions space_options;
  space_options.max_constants_per_attr = 0;
  auto space = discovery::BuildPairSpace(app.data.db, 0, space_options);

  for (size_t cap : {size_t{0}, size_t{40000}, size_t{5000}}) {
    discovery::MinerOptions miner_options;
    miner_options.max_evidence_rows = cap;
    discovery::RuleMiner miner(miner_options);
    Timer timer;
    auto mined = miner.Mine(eval, space);
    std::printf("evidence cap %7zu: %8.3fs, %3zu rules\n",
                cap == 0 ? SIZE_MAX : cap, timer.ElapsedSeconds(),
                mined.size());
  }
  std::printf("(support/confidence estimates stay within the Hoeffding "
              "epsilon; an over-aggressive cap trades recall of "
              "low-support rules for speed — choose the cap from the "
              "bound, as Rock does)\n");
}

}  // namespace
}  // namespace rock::bench

int main() {
  rock::bench::PrintHeader("§5 design microbenchmarks",
                           "Crystal / blocking / sampling / incremental");
  rock::bench::CrystalRemap();
  rock::bench::BlockingFilter();
  rock::bench::SamplingBound();
  rock::bench::IncrementalDetection();
  rock::bench::FdxPruningAblation();
  rock::bench::SamplingAblation();
  return 0;
}
