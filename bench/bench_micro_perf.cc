// Google-benchmark microbenchmarks for the performance-critical kernels:
// the rule evaluator's indexed joins, the fix store's temporal reachability
// and union-find, LSH signatures, string similarity and hashing. These are
// the inner loops every experiment in EXPERIMENTS.md stands on.

#include <benchmark/benchmark.h>

#include "bench/bench_telemetry.h"
#include "src/chase/fix_store.h"
#include "src/common/hash.h"
#include "src/common/mutex.h"
#include "src/common/rng.h"
#include "src/common/strings.h"
#include "src/ml/batch.h"
#include "src/ml/library.h"
#include "src/ml/lsh.h"
#include "src/rules/eval.h"
#include "src/rules/parser.h"
#include "src/workload/generator.h"

namespace rock {
namespace {

const workload::GeneratedData& LogisticsData() {
  static workload::GeneratedData* data = [] {
    workload::GeneratorOptions options;
    options.rows = 400;
    return new workload::GeneratedData(
        workload::MakeLogisticsData(options));
  }();
  return *data;
}

void BM_Crc32(benchmark::State& state) {
  std::string payload(static_cast<size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(Crc32(payload));
  }
  state.SetBytesProcessed(
      static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Crc32)->Arg(64)->Arg(4096);

void BM_Hash64(benchmark::State& state) {
  std::string payload(static_cast<size_t>(state.range(0)), 'y');
  for (auto _ : state) {
    benchmark::DoNotOptimize(Hash64(payload));
  }
  state.SetBytesProcessed(
      static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Hash64)->Arg(64)->Arg(4096);

void BM_JaroWinkler(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        JaroWinkler("James Smith Johnson 42", "Jmaes Smtih Johnson 42"));
  }
}
BENCHMARK(BM_JaroWinkler);

void BM_SoftTokenSimilarity(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(SoftTokenSimilarity(
        "Acme Holdings 17 Beijing", "Acme Holding 17 Beijin"));
  }
}
BENCHMARK(BM_SoftTokenSimilarity);

void BM_EditDistance(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        EditDistance("Acme Holdings 17 Beijing West Road",
                     "Acme Holding 17 Bejing West Rd"));
  }
}
BENCHMARK(BM_EditDistance);

void BM_TokenJaccard(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        TokenJaccard("Acme Holdings 17 Beijing West Road",
                     "Acme Holding 17 Beijing West Rd"));
  }
}
BENCHMARK(BM_TokenJaccard);

/// 256 candidate pairs drawn from a small vocabulary — the shape blocking
/// produces, where the same attribute values recur across many pairs.
const ml::PairBatch& MlBenchPairs() {
  static ml::PairBatch* batch = [] {
    static const char* kProducts[] = {
        "iPhone 14 Pro Max 256GB",  "iPhone 14 Pro 256GB",
        "Galaxy S23 Ultra 512GB",   "Galaxy S23 Ultra 256GB",
        "Huawei Mate 50 Pro",       "Huawei Mate 50",
        "Pixel 7 Pro Snow 128GB",   "Pixel 7 Snow 128GB",
        "Acme Holdings Beijing",    "Acme Holding Bejing",
        "North West Trading Co",    "NorthWest Trading Company",
    };
    constexpr size_t kVocab = sizeof(kProducts) / sizeof(kProducts[0]);
    Rng rng(7);
    auto* out = new ml::PairBatch();
    for (int i = 0; i < 256; ++i) {
      out->Add({Value::String(kProducts[rng.NextBounded(kVocab)]),
                Value::Double(rng.NextDouble() * 100.0)},
               {Value::String(kProducts[rng.NextBounded(kVocab)]),
                Value::Double(rng.NextDouble() * 100.0)});
    }
    return out;
  }();
  return *batch;
}

/// Scalar baseline for the batched-predicate ratchet: four rules sharing
/// one model each score every candidate pair from scratch — the pre-batch
/// detector's behavior.
void BM_MlPredicateScalar(benchmark::State& state) {
  const ml::PairBatch& batch = MlBenchPairs();
  ml::SimilarityClassifier model(0.6);
  constexpr int kRules = 4;
  for (auto _ : state) {
    double sink = 0.0;
    for (int r = 0; r < kRules; ++r) {
      for (size_t i = 0; i < batch.size(); ++i) {
        sink += model.Score(batch.a[i], batch.b[i]);
      }
    }
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          kRules * static_cast<int64_t>(batch.size()));
}
BENCHMARK(BM_MlPredicateScalar);

/// Batched counterpart: one ScoreBatch through the shared scratch fills a
/// fresh score memo, and the four rules answer from it by content key —
/// the detector's warm-then-verify path. The perf ratchet asserts this
/// stays at least 2x faster than BM_MlPredicateScalar.
void BM_MlPredicateBatched(benchmark::State& state) {
  const ml::PairBatch& batch = MlBenchPairs();
  ml::SimilarityClassifier model(0.6);
  constexpr int kRules = 4;
  for (auto _ : state) {
    ml::MlScoreCache cache;
    ml::BatchScratch scratch;
    std::vector<double> scores;
    std::vector<ml::MlScoreCache::Key> keys;
    keys.reserve(batch.size());
    model.ScoreBatch(batch, &scratch, &scores);
    for (size_t i = 0; i < batch.size(); ++i) {
      keys.push_back(ml::MlScoreCache::MakeKey("M", batch.a[i], batch.b[i]));
    }
    cache.InsertBatch(keys, scores);
    double sink = 0.0;
    for (int r = 0; r < kRules; ++r) {
      for (size_t i = 0; i < batch.size(); ++i) {
        double score = 0.0;
        cache.Lookup(ml::MlScoreCache::MakeKey("M", batch.a[i], batch.b[i]),
                     &score);
        sink += score;
      }
    }
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          kRules * static_cast<int64_t>(batch.size()));
}
BENCHMARK(BM_MlPredicateBatched);

void BM_LogisticPairScalar(benchmark::State& state) {
  const ml::PairBatch& batch = MlBenchPairs();
  ml::LogisticPairClassifier model(2);
  for (auto _ : state) {
    double sink = 0.0;
    for (size_t i = 0; i < batch.size(); ++i) {
      sink += model.Score(batch.a[i], batch.b[i]);
    }
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(batch.size()));
}
BENCHMARK(BM_LogisticPairScalar);

void BM_LogisticPairBatched(benchmark::State& state) {
  const ml::PairBatch& batch = MlBenchPairs();
  ml::LogisticPairClassifier model(2);
  ml::BatchScratch scratch;
  for (auto _ : state) {
    scratch.Reset();
    std::vector<double> scores;
    model.ScoreBatch(batch, &scratch, &scores);
    benchmark::DoNotOptimize(scores.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(batch.size()));
}
BENCHMARK(BM_LogisticPairBatched);

void BM_MinHashSignature(benchmark::State& state) {
  ml::MinHash minhash(static_cast<int>(state.range(0)));
  std::vector<std::string> tokens = {"acme", "holdings", "17",
                                     "beijing", "west", "road"};
  for (auto _ : state) {
    benchmark::DoNotOptimize(minhash.Signature(tokens));
  }
}
BENCHMARK(BM_MinHashSignature)->Arg(16)->Arg(64);

void BM_IndexedJoinEnumeration(benchmark::State& state) {
  // The evaluator's hash-join path over a realistic FD rule.
  const workload::GeneratedData& data = LogisticsData();
  auto rule = rules::ParseRee(
      "Shipment(t0) ^ Shipment(t1) ^ t0.zip = t1.zip -> t0.area = t1.area",
      data.db.schema());
  rules::EvalContext ctx;
  ctx.db = &data.db;
  rules::Evaluator eval(ctx);
  for (auto _ : state) {
    size_t count = 0;
    eval.ForEachSatisfying(*rule, [&](const rules::Valuation&) {
      ++count;
      return true;
    });
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_IndexedJoinEnumeration);

void BM_ViolationScan(benchmark::State& state) {
  const workload::GeneratedData& data = LogisticsData();
  auto rule = rules::ParseRee(
      "Shipment(t0) ^ Shipment(t1) ^ t0.seller_id = t1.seller_id -> "
      "t0.seller_name = t1.seller_name",
      data.db.schema());
  rules::EvalContext ctx;
  ctx.db = &data.db;
  rules::Evaluator eval(ctx);
  for (auto _ : state) {
    size_t violations = 0;
    eval.ForEachViolation(*rule, [&](const rules::Valuation&) {
      ++violations;
      return true;
    });
    benchmark::DoNotOptimize(violations);
  }
}
BENCHMARK(BM_ViolationScan);

void BM_UnionFindMergeFind(benchmark::State& state) {
  for (auto _ : state) {
    chase::UnionFind uf;
    for (int64_t i = 0; i < state.range(0); ++i) {
      uf.Union(i, i / 2);
    }
    int64_t sink = 0;
    for (int64_t i = 0; i < state.range(0); ++i) {
      sink ^= uf.Find(i);
    }
    benchmark::DoNotOptimize(sink);
  }
}
BENCHMARK(BM_UnionFindMergeFind)->Arg(1000)->Arg(10000);

void BM_TemporalReachability(benchmark::State& state) {
  // A chain a0 ⪯ a1 ⪯ ... ⪯ an with reachability queries across it.
  chase::TemporalOrderStore store;
  bool added = false;
  const int64_t n = state.range(0);
  for (int64_t i = 0; i + 1 < n; ++i) {
    benchmark::DoNotOptimize(store.Add(i, i + 1, i % 3 == 0, &added));
  }
  Rng rng(1);
  for (auto _ : state) {
    int64_t a = static_cast<int64_t>(rng.NextBounded(n));
    int64_t b = static_cast<int64_t>(rng.NextBounded(n));
    benchmark::DoNotOptimize(store.Holds(a, b, false));
  }
}
BENCHMARK(BM_TemporalReachability)->Arg(64)->Arg(512);

void BM_FixStoreSetValue(benchmark::State& state) {
  const workload::GeneratedData& data = LogisticsData();
  const Relation& shipment = data.db.relation(0);
  for (auto _ : state) {
    state.PauseTiming();
    chase::FixStore store(&data.db);
    state.ResumeTiming();
    common::RoleGuard apply(store.apply_role());
    bool changed = false;
    for (size_t row = 0; row < shipment.size(); ++row) {
      benchmark::DoNotOptimize(
          store.SetValue(0, shipment.tuple(row).tid, 3,
                         Value::String("Chaoyang"), "bench", &changed));
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(shipment.size()));
}
BENCHMARK(BM_FixStoreSetValue);

/// Console output as usual, plus a capture of every run's per-iteration
/// real time so main() can emit BENCH_micro_perf.json.
class CapturingReporter : public benchmark::ConsoleReporter {
 public:
  struct Row {
    std::string name;
    double real_seconds_per_iter = 0.0;
    int64_t iterations = 0;
  };

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      Row row;
      row.name = run.benchmark_name();
      row.iterations = run.iterations;
      if (run.iterations > 0) {
        row.real_seconds_per_iter =
            run.real_accumulated_time / static_cast<double>(run.iterations);
      }
      rows_.push_back(std::move(row));
    }
    benchmark::ConsoleReporter::ReportRuns(runs);
  }

  const std::vector<Row>& rows() const { return rows_; }

 private:
  std::vector<Row> rows_;
};

}  // namespace
}  // namespace rock

int main(int argc, char** argv) {
  // Strips --serve* flags before google-benchmark sees (and rejects) them.
  rock::bench::ServeGuard serve(&argc, argv);
  rock::bench::BenchTelemetry telemetry("micro_perf");
  rock::Timer total;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  rock::CapturingReporter reporter;
  {
    ROCK_OBS_SPAN("bench.run_all");
    benchmark::RunSpecifiedBenchmarks(&reporter);
  }
  benchmark::Shutdown();
  // Each microbenchmark becomes a phase (per-iteration real time) and a
  // result (iteration count); slashes in Google Benchmark names (e.g.
  // "BM_Crc32/64") are kept verbatim — JSON keys allow them. The kernels
  // under test sit below the instrumented layers, so the iteration count
  // doubles as this binary's telemetry counter.
  rock::obs::Counter* iterations =
      rock::obs::MetricsRegistry::Global().GetCounter(
          "rock_bench_iterations_total");
  for (const rock::CapturingReporter::Row& row : reporter.rows()) {
    telemetry.AddPhase(row.name, row.real_seconds_per_iter);
    telemetry.AddResult(row.name + "/iterations",
                        static_cast<double>(row.iterations));
    iterations->Add(static_cast<uint64_t>(row.iterations));
  }
  telemetry.AddPhase("total", total.ElapsedSeconds());
  telemetry.Emit();
  return 0;
}
