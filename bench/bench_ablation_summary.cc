// Reproduces the §6 summary claims and the Exp-4 bank iteration loop:
//  (1) ML predicates raise F1 (paper: +20.5% average, up to 59.2%);
//  (2) task interaction: Rock vs Rock_noC (paper: 88.5% vs 23.7% average);
//  (3) rule counts per application (paper: 388 / 47 / 167);
//  (4) the bank deployment's iterative loop — discover, detect, label,
//      accumulate ground truth, correct — improving F1 across rounds
//      (paper: 80.1% -> 97.7%).

#include "bench/bench_common.h"

#include "src/discovery/evidence.h"

namespace rock::bench {
namespace {

double EcF1(const std::string& name, size_t rows, core::Variant variant) {
  AppContext app = MakeApp(name, rows);
  RockSetup setup = PrepareRock(app, variant);
  core::CorrectionResult result;
  auto engine = setup.rock->CorrectErrors(setup.rules,
                                          app.data.clean_tuples, &result);
  return workload::ScoreCorrection(app.data, *engine).overall.f1();
}

void MlAblation() {
  std::printf("\n(1) ML-predicate ablation (EC F1)\n");
  PrintColumns({"Rock", "Rock_noML", "delta"});
  double total_delta = 0;
  for (const char* name : {"Bank", "Logistics", "Sales"}) {
    double rock = EcF1(name, 300, core::Variant::kRock);
    double noml = EcF1(name, 300, core::Variant::kNoMl);
    PrintRow(name, {rock, noml, rock - noml});
    total_delta += rock - noml;
  }
  std::printf("Average ML-predicate gain: %.3f (paper: +20.5%% avg, "
              "up to +59.2%%)\n", total_delta / 3.0);
}

void InteractionAblation() {
  std::printf("\n(2) Task-interaction ablation (EC F1)\n");
  PrintColumns({"Rock", "Rock_noC"});
  for (const char* name : {"Bank", "Logistics", "Sales"}) {
    PrintRow(name, {EcF1(name, 300, core::Variant::kRock),
                    EcF1(name, 300, core::Variant::kNoChase)});
  }
  std::printf("Paper: 88.5%% vs 23.7%% on average.\n");
}

void RuleCounts() {
  std::printf("\n(3) Discovered rule counts per application\n");
  discovery::PredicateSpaceOptions space;
  space.max_constants_per_attr = 2;
  space.ml_bindings = {{"MER", {"name"}}};
  for (const char* name : {"Bank", "Logistics", "Sales"}) {
    AppContext app = MakeApp(name, 300);
    core::Rock rock(&app.data.db, &app.data.graph);
    rock.TrainModels(app.spec);
    auto mined = rock.DiscoverRules(space);
    auto polys = rock.DiscoverPolynomials();
    std::printf("%-12s %4zu REE++s + %zu polynomial expressions\n", name,
                mined.size(), polys.size());
  }
  std::printf("Paper reports 388 / 47 / 167 REE++s at production scale.\n");
}

void BankIterationLoop() {
  std::printf("\n(4) Bank deployment loop: ground truth accumulation\n");
  std::printf("%8s %18s %10s\n", "round", "ground-truth", "EC F1");
  AppContext app = MakeApp("Bank", 300);
  RockSetup setup = PrepareRock(app, core::Variant::kRock);
  // Round r uses a growing prefix of the labeled clean tuples, emulating
  // the experts validating more detections each round.
  const double fractions[] = {0.1, 0.3, 0.6, 1.0};
  int round = 1;
  for (double fraction : fractions) {
    size_t take = static_cast<size_t>(
        fraction * static_cast<double>(app.data.clean_tuples.size()));
    std::vector<std::pair<int, int64_t>> gt(
        app.data.clean_tuples.begin(),
        app.data.clean_tuples.begin() + static_cast<long>(take));
    core::CorrectionResult result;
    auto engine = setup.rock->CorrectErrors(setup.rules, gt, &result);
    double f1 = workload::ScoreCorrection(app.data, *engine).overall.f1();
    std::printf("%8d %13zu cells %10.3f\n", round++, take, f1);
  }
  std::printf("Paper: the bank loop improved F1 from 80.1%% to 97.7%%.\n");
}

}  // namespace
}  // namespace rock::bench

int main() {
  rock::bench::PrintHeader("§6 summary / Exp-4",
                           "Ablations, rule counts, deployment loop");
  rock::bench::MlAblation();
  rock::bench::InteractionAblation();
  rock::bench::RuleCounts();
  rock::bench::BankIterationLoop();
  return 0;
}
