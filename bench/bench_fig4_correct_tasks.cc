// Reproduces Figure 4(j): per-task error-correction F-measure (ER, CR, MI,
// TD) on the Sales application — Rock vs Rock_noC vs T5s vs RB.
//
// Paper shape: Rock beats every baseline on every task; TD is not
// supported by ES/T5s, and TD/ER are not supported by RB (cell-level
// correctors cannot merge entities or rank currency) — those cells print
// n/a exactly as the paper omits those bars.

#include "bench/bench_common.h"

namespace rock::bench {
namespace {

using workload::InjectedError;

std::map<InjectedError, double> RockByType(core::Variant variant) {
  AppContext app = MakeApp("Sales", 300);
  RockSetup setup = PrepareRock(app, variant);
  core::CorrectionResult result;
  auto engine = setup.rock->CorrectErrors(setup.rules,
                                          app.data.clean_tuples, &result);
  auto score = workload::ScoreCorrection(app.data, *engine);
  std::map<InjectedError, double> out;
  for (const auto& [type, prf] : score.by_type) out[type] = prf.f1();
  return out;
}

/// Cell-corrector baselines recover only conflicts/nulls; split their
/// corrections by the injected type.
std::map<InjectedError, double> CellBaselineByType(bool use_t5s) {
  AppContext app = MakeApp("Sales", 300);
  std::vector<std::tuple<int, int64_t, int, Value>> fixes;
  baselines::T5sModel t5s;
  baselines::RbCleaner rb;
  detect::DetectionReport report;
  if (use_t5s) {
    t5s.Train(app.data.db);
    report = t5s.Detect(app.data.db);
  } else {
    std::vector<std::pair<int, int64_t>> tuples;
    std::vector<std::tuple<int, int64_t, int>> errors;
    LabeledSample(app.data, 0.5, &tuples, &errors);
    rb.Train(app.data.db, tuples, errors);
    report = rb.Detect(app.data.db);
  }
  for (const auto& error : report.errors) {
    for (const auto& cell : error.cells) {
      if (cell.attr < 0) continue;
      const Relation& rel = app.data.db.relation(cell.rel);
      int row = rel.RowOfTid(cell.tid);
      if (row < 0) continue;
      Value suggestion =
          use_t5s ? t5s.SuggestCorrection(app.data.db, cell.rel,
                                          rel.tuple(static_cast<size_t>(row)),
                                          cell.attr)
                  : rb.SuggestCorrection(app.data.db, cell.rel,
                                         rel.tuple(static_cast<size_t>(row)),
                                         cell.attr);
      if (!suggestion.is_null()) {
        fixes.emplace_back(cell.rel, cell.tid, cell.attr, suggestion);
      }
    }
  }
  // Score per type: a fix matching a conflict entry counts to CR, a null
  // entry to MI.
  std::map<InjectedError, workload::Prf> per_type;
  std::map<std::tuple<int, int64_t, int>,
           const workload::ErrorLogEntry*> truth;
  for (const auto& entry : app.data.errors) {
    if (entry.type == InjectedError::kConflict ||
        entry.type == InjectedError::kNull) {
      truth[{entry.rel, entry.tid, entry.attr}] = &entry;
    }
  }
  std::set<std::tuple<int, int64_t, int>> corrected;
  for (const auto& [rel, tid, attr, value] : fixes) {
    auto it = truth.find({rel, tid, attr});
    if (it != truth.end() && it->second->clean_value == value) {
      per_type[it->second->type].true_positives++;
      corrected.insert({rel, tid, attr});
    } else if (it != truth.end()) {
      per_type[it->second->type].false_positives++;
    } else {
      per_type[InjectedError::kConflict].false_positives++;
    }
  }
  for (const auto& entry : app.data.errors) {
    if ((entry.type == InjectedError::kConflict ||
         entry.type == InjectedError::kNull) &&
        corrected.count({entry.rel, entry.tid, entry.attr}) == 0) {
      per_type[entry.type].false_negatives++;
    }
  }
  std::map<InjectedError, double> out;
  for (const auto& [type, prf] : per_type) out[type] = prf.f1();
  return out;
}

double Get(const std::map<InjectedError, double>& scores,
           InjectedError type, bool supported = true) {
  if (!supported) return -1.0;
  auto it = scores.find(type);
  return it == scores.end() ? 0.0 : it->second;
}

}  // namespace
}  // namespace rock::bench

int main() {
  using rock::workload::InjectedError;
  rock::bench::PrintHeader(
      "Figure 4(j)", "Sales-EC per-task F1 (ER / CR / MI / TD)");
  auto rock = rock::bench::RockByType(rock::core::Variant::kRock);
  auto noc = rock::bench::RockByType(rock::core::Variant::kNoChase);
  auto t5s = rock::bench::CellBaselineByType(true);
  auto rb = rock::bench::CellBaselineByType(false);
  rock::bench::PrintColumns({"Rock", "Rock_noC", "T5s", "RB"});
  rock::bench::PrintRow(
      "ER", {rock::bench::Get(rock, InjectedError::kDuplicate),
             rock::bench::Get(noc, InjectedError::kDuplicate),
             rock::bench::Get(t5s, InjectedError::kDuplicate, false),
             rock::bench::Get(rb, InjectedError::kDuplicate, false)});
  rock::bench::PrintRow(
      "CR", {rock::bench::Get(rock, InjectedError::kConflict),
             rock::bench::Get(noc, InjectedError::kConflict),
             rock::bench::Get(t5s, InjectedError::kConflict),
             rock::bench::Get(rb, InjectedError::kConflict)});
  rock::bench::PrintRow(
      "MI", {rock::bench::Get(rock, InjectedError::kNull),
             rock::bench::Get(noc, InjectedError::kNull),
             rock::bench::Get(t5s, InjectedError::kNull),
             rock::bench::Get(rb, InjectedError::kNull)});
  rock::bench::PrintRow(
      "TD", {rock::bench::Get(rock, InjectedError::kStale),
             rock::bench::Get(noc, InjectedError::kStale),
             rock::bench::Get(t5s, InjectedError::kStale, false),
             rock::bench::Get(rb, InjectedError::kStale, false)});
  std::printf("\nn/a marks operations a baseline does not support "
              "(paper: \"TD of T5s, TD and ER of RB are not shown\").\n");
  return 0;
}
