// Reproduces Figure 4(i): error-correction F-measure per application —
// Rock vs ES / T5s / RB, plus the Rock_noML / Rock_seq / Rock_noC
// ablations discussed alongside it.
//
// Paper shape: Rock beats ES/T5s/RB decisively (chasing with accumulated
// ground truth); Rock_seq matches Rock (same fixpoint); Rock_noC falls far
// behind (no task interaction); Rock_noML loses the ML-dependent fixes.

#include "bench/bench_common.h"

#include "src/discovery/evidence.h"

namespace rock::bench {
namespace {

double RockEcF1(const std::string& name, size_t rows, core::Variant variant) {
  AppContext app = MakeApp(name, rows);
  RockSetup setup = PrepareRock(app, variant);
  core::CorrectionResult result;
  auto engine = setup.rock->CorrectErrors(setup.rules,
                                          app.data.clean_tuples, &result);
  return workload::ScoreCorrection(app.data, *engine).overall.f1();
}

double EsEcF1(const std::string& name, size_t rows) {
  // ES corrects by chasing with ITS rules (mined without ML, precision
  // focused) and the same ground truth.
  AppContext app = MakeApp(name, rows);
  rules::EvalContext ctx;
  ctx.db = &app.data.db;
  rules::Evaluator eval(ctx);
  baselines::EsMiner miner(0.9);
  std::vector<rules::Ree> rules;
  discovery::PredicateSpaceOptions space_options;
  space_options.max_constants_per_attr = 0;
  for (size_t rel = 0; rel < app.data.db.num_relations(); ++rel) {
    auto space = discovery::BuildPairSpace(
        app.data.db, static_cast<int>(rel), space_options);
    for (auto& mined : miner.Mine(eval, space)) {
      rules.push_back(std::move(mined.rule));
    }
  }
  ml::MlLibrary models;
  chase::ChaseEngine engine(&app.data.db, &app.data.graph, &models);
  for (const auto& [rel, tid] : app.data.clean_tuples) {
    Status ignored = engine.fix_store().AddGroundTruthTuple(rel, tid);
    (void)ignored;
  }
  engine.Run(rules);
  return workload::ScoreCorrection(app.data, engine).overall.f1();
}

double T5sEcF1(const std::string& name, size_t rows) {
  AppContext app = MakeApp(name, rows);
  baselines::T5sModel model;
  model.Train(app.data.db);
  auto report = model.Detect(app.data.db);
  std::vector<std::tuple<int, int64_t, int, Value>> fixes;
  for (const auto& error : report.errors) {
    for (const auto& cell : error.cells) {
      if (cell.attr < 0) continue;
      const Relation& rel = app.data.db.relation(cell.rel);
      int row = rel.RowOfTid(cell.tid);
      if (row < 0) continue;
      Value suggestion = model.SuggestCorrection(
          app.data.db, cell.rel, rel.tuple(static_cast<size_t>(row)),
          cell.attr);
      if (!suggestion.is_null()) {
        fixes.emplace_back(cell.rel, cell.tid, cell.attr, suggestion);
      }
    }
  }
  return ScoreBaselineCorrections(app.data, fixes).f1();
}

double RbEcF1(const std::string& name, size_t rows) {
  AppContext app = MakeApp(name, rows);
  std::vector<std::pair<int, int64_t>> tuples;
  std::vector<std::tuple<int, int64_t, int>> errors;
  LabeledSample(app.data, 0.5, &tuples, &errors);
  baselines::RbCleaner cleaner;
  cleaner.Train(app.data.db, tuples, errors);
  auto report = cleaner.Detect(app.data.db);
  std::vector<std::tuple<int, int64_t, int, Value>> fixes;
  for (const auto& error : report.errors) {
    for (const auto& cell : error.cells) {
      if (cell.attr < 0) continue;
      const Relation& rel = app.data.db.relation(cell.rel);
      int row = rel.RowOfTid(cell.tid);
      if (row < 0) continue;
      Value suggestion = cleaner.SuggestCorrection(
          app.data.db, cell.rel, rel.tuple(static_cast<size_t>(row)),
          cell.attr);
      if (!suggestion.is_null()) {
        fixes.emplace_back(cell.rel, cell.tid, cell.attr, suggestion);
      }
    }
  }
  return ScoreBaselineCorrections(app.data, fixes).f1();
}

void RunApp(const std::string& name, size_t rows) {
  PrintRow(name, {RockEcF1(name, rows, core::Variant::kRock),
                  RockEcF1(name, rows, core::Variant::kNoMl),
                  RockEcF1(name, rows, core::Variant::kSequential),
                  RockEcF1(name, rows, core::Variant::kNoChase),
                  EsEcF1(name, rows), T5sEcF1(name, rows),
                  RbEcF1(name, rows)});
}

}  // namespace
}  // namespace rock::bench

int main() {
  rock::bench::PrintHeader(
      "Figure 4(i)",
      "Error correction F1 per application (+ variant ablations)");
  rock::bench::PrintColumns({"Rock", "Rock_noML", "Rock_seq", "Rock_noC",
                             "ES", "T5s", "RB"});
  rock::bench::RunApp("Bank", 300);
  rock::bench::RunApp("Logistics", 400);
  rock::bench::RunApp("Sales", 300);
  std::printf("\nExpected shape: Rock == Rock_seq > everything else; "
              "Rock_noC and pure-ML baselines far behind.\n");
  return 0;
}
