#pragma once

// Machine-readable bench output. Every bench binary keeps its human-readable
// stdout tables and additionally emits BENCH_<name>.json with per-phase
// timings, schedule reports and the process telemetry (counters, histograms,
// span aggregates) captured over the run. CI's bench-smoke step validates
// these files with scripts/check_bench_json.py.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/common/timer.h"
#include "src/obs/exporters.h"
#include "src/obs/metrics.h"
#include "src/obs/profile.h"
#include "src/obs/provenance.h"
#include "src/obs/server.h"
#include "src/obs/trace.h"
#include "src/par/executor.h"

namespace rock::bench {

/// Collects one bench run's results and writes BENCH_<name>.json on Emit().
/// Construction resets the process-wide metrics registry and tracer so the
/// exported telemetry covers exactly this run.
class BenchTelemetry {
 public:
  explicit BenchTelemetry(std::string name) : name_(std::move(name)) {
    obs::MetricsRegistry::Global().Reset();
    obs::Tracer::Global().Reset();
    obs::ScheduleBreakdowns::Global().Reset();
    // Name the bench driver thread in trace exports; workers name
    // themselves when the pool spawns them.
    obs::Tracer::Global().SetThisThreadName("main");
  }

  /// Records a named phase duration (seconds).
  void AddPhase(const std::string& phase, double seconds) {
    phases_.emplace_back(phase, seconds);
  }

  /// Records one worker-pool schedule row (one bench table line).
  void AddSchedule(const std::string& label,
                   const par::ScheduleReport& report) {
    schedules_.emplace_back(label, report);
  }

  /// Records a scalar result (speedups, F1 scores, row counts, ...).
  void AddResult(const std::string& key, double value) {
    results_.emplace_back(key, value);
  }

  /// Attaches a pre-rendered JSON value as a top-level block, keyed by
  /// `key` (e.g. the serve bench's "serve" latency/throughput block built
  /// with its own JsonWriter). Emitted verbatim after "results".
  void AddBlock(const std::string& key, std::string raw_json) {
    blocks_.emplace_back(key, std::move(raw_json));
  }

  /// Writes BENCH_<name>.json into $ROCK_BENCH_JSON_DIR (or the working
  /// directory) and returns the path. Prints a one-line pointer to stdout so
  /// harness logs show where the JSON went.
  std::string Emit() const {
    obs::JsonWriter w;
    w.BeginObject();
    w.Key("bench").String(name_);
    w.Key("schema_version").Int(1);
    w.Key("phases").BeginObject();
    for (const auto& [phase, seconds] : phases_) {
      w.Key(phase).Number(seconds);
    }
    w.EndObject();
    w.Key("schedules").BeginArray();
    for (const auto& [label, report] : schedules_) {
      AppendSchedule(label, report, &w);
    }
    w.EndArray();
    w.Key("results").BeginObject();
    for (const auto& [key, value] : results_) {
      w.Key(key).Number(value);
    }
    w.EndObject();
    for (const auto& [key, json] : blocks_) {
      w.Key(key).Raw(json);
    }
    obs::TelemetrySnapshot snap = obs::CaptureGlobalTelemetry();
    w.Key("telemetry").BeginObject();
    obs::AppendTelemetryFields(snap.metrics, snap.spans, snap.dropped_spans,
                               &w, snap.breakdowns);
    w.EndObject();
    AppendProfileBlock(&w);
    // Whole-run provenance aggregate (fix counts by rule, proof-depth
    // histogram, premise-source mix) distilled from the rock_prov_* metrics
    // exported by the chase. check_bench_json.py validates this block.
    obs::AppendProvenanceBlock(snap.metrics, &w);
    // Fault-injection/recovery accounting (all zero on fault-free runs);
    // bench-smoke gates on faults.unrecovered == 0.
    obs::AppendFaultsBlock(snap.metrics, &w);
    w.EndObject();

    std::string path = OutputPath();
    Status status = obs::WriteFile(path, w.str() + "\n");
    if (status.ok()) {
      std::printf("\n[bench-json] wrote %s\n", path.c_str());
    } else {
      std::fprintf(stderr, "[bench-json] FAILED writing %s: %s\n",
                   path.c_str(), status.message().c_str());
    }

#ifndef ROCK_OBS_DISABLE_PROFILER
    // Folded stacks as their own artifact, ready for
    // `flamegraph.pl PROFILE_<name>.folded > flame.svg`.
    obs::ProfileSnapshot profile = obs::CpuProfiler::Global().TakeSnapshot();
    if (profile.samples > 0) {
      std::string folded_path = OutputPrefix() + "PROFILE_" + name_ +
                                ".folded";
      Status folded_status =
          obs::WriteFile(folded_path, obs::CpuProfiler::Global().Folded());
      if (folded_status.ok()) {
        std::printf("[bench-json] wrote %s\n", folded_path.c_str());
      } else {
        std::fprintf(stderr, "[bench-json] FAILED writing %s: %s\n",
                     folded_path.c_str(), folded_status.message().c_str());
      }
    }
#endif

    // Companion Perfetto timeline over the same run: load TRACE_<name>.json
    // at https://ui.perfetto.dev (or chrome://tracing). CI validates it
    // with scripts/check_bench_json.py --trace.
    std::string trace_path = OutputPrefix() + "TRACE_" + name_ + ".json";
    Status trace_status =
        obs::WriteFile(trace_path, snap.ToChromeTrace() + "\n");
    if (trace_status.ok()) {
      std::printf("[bench-json] wrote %s\n", trace_path.c_str());
    } else {
      std::fprintf(stderr, "[bench-json] FAILED writing %s: %s\n",
                   trace_path.c_str(), trace_status.message().c_str());
    }
    return path;
  }

 private:
  /// Emits the "profile" block: the sampling profiler's folded stacks when
  /// the plane is compiled in, a bare {"enabled": false} otherwise so the
  /// schema checker can tell "off" from "missing".
  static void AppendProfileBlock(obs::JsonWriter* w) {
    w->Key("profile").BeginObject();
#ifndef ROCK_OBS_DISABLE_PROFILER
    obs::ProfileSnapshot profile = obs::CpuProfiler::Global().TakeSnapshot();
    w->Key("enabled").Bool(true);
    w->Key("running").Bool(profile.running);
    w->Key("sample_hz").Int(profile.sample_hz);
    w->Key("samples").Uint(profile.samples);
    w->Key("dropped").Uint(profile.dropped);
    w->Key("duration_seconds").Number(profile.duration_seconds);
    w->Key("stacks").BeginArray();
    for (const auto& [stack, count] : profile.folded) {
      w->BeginObject();
      w->Key("stack").String(stack);
      w->Key("count").Uint(count);
      w->EndObject();
    }
    w->EndArray();
#else
    w->Key("enabled").Bool(false);
#endif
    w->EndObject();
  }

  static std::string OutputPrefix() {
    // Benches are single-threaded at report time; nothing calls setenv.
    const char* dir = std::getenv("ROCK_BENCH_JSON_DIR");  // NOLINT(concurrency-mt-unsafe)
    return (dir != nullptr && *dir != '\0') ? std::string(dir) + "/"
                                            : std::string();
  }

  std::string OutputPath() const {
    return OutputPrefix() + "BENCH_" + name_ + ".json";
  }

  static void AppendSchedule(const std::string& label,
                             const par::ScheduleReport& report,
                             obs::JsonWriter* w) {
    w->BeginObject();
    w->Key("label").String(label);
    w->Key("mode").String(report.mode == par::ExecutionMode::kThreads
                              ? "threads"
                              : "simulated");
    w->Key("workers").Int(report.num_workers);
    w->Key("serial_seconds").Number(report.serial_seconds);
    w->Key("makespan_seconds").Number(report.makespan_seconds);
    w->Key("wall_seconds").Number(report.wall_seconds);
    w->Key("stolen_units").Int(report.stolen_units);
    w->Key("speedup").Number(report.speedup());
    w->Key("measured_speedup").Number(report.measured_speedup());
    w->Key("initial_units").BeginArray();
    for (int units : report.initial_units) w->Int(units);
    w->EndArray();
    w->Key("executed_units").BeginArray();
    for (int units : report.executed_units) w->Int(units);
    w->EndArray();
    // Per-worker wait-vs-run attribution (submit->dequeue wait, unit
    // execution, clamped wall remainder), parallel to the unit arrays.
    w->Key("busy_seconds").BeginArray();
    for (double s : report.busy_seconds) w->Number(s);
    w->EndArray();
    w->Key("wait_seconds").BeginArray();
    for (double s : report.wait_seconds) w->Number(s);
    w->EndArray();
    w->Key("idle_seconds").BeginArray();
    for (double s : report.idle_seconds) w->Number(s);
    w->EndArray();
    w->EndObject();
  }

  std::string name_;
  std::vector<std::pair<std::string, double>> phases_;
  std::vector<std::pair<std::string, par::ScheduleReport>> schedules_;
  std::vector<std::pair<std::string, double>> results_;
  std::vector<std::pair<std::string, std::string>> blocks_;
};

/// Opt-in live telemetry for bench binaries. Scans argv for
///
///   --serve[=PORT]             start obs::TelemetryServer (0/default =
///                              ephemeral port)
///   --serve-port-file=PATH     write the bound port to PATH (CI polls it)
///   --serve-linger-seconds=N   keep serving N seconds after the bench
///                              body finishes (default 0)
///   --profile[=HZ]             start the sampling CPU profiler for the
///                              whole run (default 97 Hz); folded stacks
///                              land in BENCH/PROFILE artifacts and at
///                              /profile.folded when also serving
///
/// and strips those flags so downstream parsers (google-benchmark's
/// Initialize rejects unknown flags) never see them. Construct before any
/// other argv consumer; the destructor lingers, then stops the server.
class ServeGuard {
 public:
  ServeGuard(int* argc, char** argv) {
    int kept = 1;
    for (int i = 1; i < *argc; ++i) {
      std::string arg = argv[i];
      if (arg == "--serve") {
        serve_ = true;
      } else if (arg.rfind("--serve=", 0) == 0) {
        serve_ = true;
        port_ = std::atoi(arg.c_str() + 8);
      } else if (arg.rfind("--serve-port-file=", 0) == 0) {
        port_file_ = arg.substr(18);
      } else if (arg.rfind("--serve-linger-seconds=", 0) == 0) {
        linger_seconds_ = std::atof(arg.c_str() + 23);
      } else if (arg == "--profile") {
        profile_ = true;
      } else if (arg.rfind("--profile=", 0) == 0) {
        profile_ = true;
        profile_hz_ = std::atoi(arg.c_str() + 10);
      } else {
        argv[kept++] = argv[i];
      }
    }
    *argc = kept;

    if (profile_) {
      obs::ProfileOptions options;
      if (profile_hz_ > 0) options.sample_hz = profile_hz_;
      Status status = obs::StartGlobalProfiler(options);
      if (status.ok()) {
        std::printf("[profile] sampling at %d Hz\n", options.sample_hz);
      } else {
        std::fprintf(stderr, "[profile] FAILED: %s\n",
                     status.message().c_str());
        profile_ = false;
      }
    }

    if (!serve_) return;

    obs::TelemetryServer::Options options;
    options.port = port_;
    options.build_info = "rock bench";
    auto server = obs::TelemetryServer::Start(options);
    if (!server.ok()) {
      std::fprintf(stderr, "[serve] FAILED: %s\n",
                   server.status().message().c_str());
      return;
    }
    server_ = std::move(server).value();
    std::printf("[serve] telemetry on http://127.0.0.1:%d "
                "(/metrics /telemetry.json /trace.json /profile.folded "
                "/profile.json /healthz)\n",
                server_->port());
    std::fflush(stdout);
    if (!port_file_.empty()) {
      Status status = obs::WriteFile(port_file_,
                                     std::to_string(server_->port()) + "\n");
      if (!status.ok()) {
        std::fprintf(stderr, "[serve] port file: %s\n",
                     status.message().c_str());
      }
    }
  }

  ~ServeGuard() {
    if (profile_) obs::StopGlobalProfiler();  // profile stays queryable
    if (server_ != nullptr && linger_seconds_ > 0) {
      std::printf("[serve] lingering %.0f s for scrapers\n",
                  linger_seconds_);
      std::fflush(stdout);
      std::this_thread::sleep_for(
          std::chrono::duration<double>(linger_seconds_));
    }
  }

  ServeGuard(const ServeGuard&) = delete;
  ServeGuard& operator=(const ServeGuard&) = delete;

  bool serving() const { return server_ != nullptr; }
  int port() const { return server_ != nullptr ? server_->port() : -1; }

 private:
  bool serve_ = false;
  int port_ = 0;
  bool profile_ = false;
  int profile_hz_ = 0;
  std::string port_file_;
  double linger_seconds_ = 0;
  std::unique_ptr<obs::TelemetryServer> server_;
};

}  // namespace rock::bench

