#pragma once

// Machine-readable bench output. Every bench binary keeps its human-readable
// stdout tables and additionally emits BENCH_<name>.json with per-phase
// timings, schedule reports and the process telemetry (counters, histograms,
// span aggregates) captured over the run. CI's bench-smoke step validates
// these files with scripts/check_bench_json.py.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "src/common/timer.h"
#include "src/obs/exporters.h"
#include "src/obs/metrics.h"
#include "src/obs/provenance.h"
#include "src/obs/trace.h"
#include "src/par/executor.h"

namespace rock::bench {

/// Collects one bench run's results and writes BENCH_<name>.json on Emit().
/// Construction resets the process-wide metrics registry and tracer so the
/// exported telemetry covers exactly this run.
class BenchTelemetry {
 public:
  explicit BenchTelemetry(std::string name) : name_(std::move(name)) {
    obs::MetricsRegistry::Global().Reset();
    obs::Tracer::Global().Reset();
  }

  /// Records a named phase duration (seconds).
  void AddPhase(const std::string& phase, double seconds) {
    phases_.emplace_back(phase, seconds);
  }

  /// Records one worker-pool schedule row (one bench table line).
  void AddSchedule(const std::string& label,
                   const par::ScheduleReport& report) {
    schedules_.emplace_back(label, report);
  }

  /// Records a scalar result (speedups, F1 scores, row counts, ...).
  void AddResult(const std::string& key, double value) {
    results_.emplace_back(key, value);
  }

  /// Writes BENCH_<name>.json into $ROCK_BENCH_JSON_DIR (or the working
  /// directory) and returns the path. Prints a one-line pointer to stdout so
  /// harness logs show where the JSON went.
  std::string Emit() const {
    obs::JsonWriter w;
    w.BeginObject();
    w.Key("bench").String(name_);
    w.Key("schema_version").Int(1);
    w.Key("phases").BeginObject();
    for (const auto& [phase, seconds] : phases_) {
      w.Key(phase).Number(seconds);
    }
    w.EndObject();
    w.Key("schedules").BeginArray();
    for (const auto& [label, report] : schedules_) {
      AppendSchedule(label, report, &w);
    }
    w.EndArray();
    w.Key("results").BeginObject();
    for (const auto& [key, value] : results_) {
      w.Key(key).Number(value);
    }
    w.EndObject();
    obs::TelemetrySnapshot snap = obs::CaptureGlobalTelemetry();
    w.Key("telemetry").BeginObject();
    obs::AppendTelemetryFields(snap.metrics, snap.spans, snap.dropped_spans,
                               &w);
    w.EndObject();
    // Whole-run provenance aggregate (fix counts by rule, proof-depth
    // histogram, premise-source mix) distilled from the rock_prov_* metrics
    // exported by the chase. check_bench_json.py validates this block.
    obs::AppendProvenanceBlock(snap.metrics, &w);
    // Fault-injection/recovery accounting (all zero on fault-free runs);
    // bench-smoke gates on faults.unrecovered == 0.
    obs::AppendFaultsBlock(snap.metrics, &w);
    w.EndObject();

    std::string path = OutputPath();
    Status status = obs::WriteFile(path, w.str() + "\n");
    if (status.ok()) {
      std::printf("\n[bench-json] wrote %s\n", path.c_str());
    } else {
      std::fprintf(stderr, "[bench-json] FAILED writing %s: %s\n",
                   path.c_str(), status.message().c_str());
    }
    return path;
  }

 private:
  std::string OutputPath() const {
    // Benches are single-threaded at report time; nothing calls setenv.
    const char* dir = std::getenv("ROCK_BENCH_JSON_DIR");  // NOLINT(concurrency-mt-unsafe)
    std::string prefix = (dir != nullptr && *dir != '\0')
                             ? std::string(dir) + "/"
                             : std::string();
    return prefix + "BENCH_" + name_ + ".json";
  }

  static void AppendSchedule(const std::string& label,
                             const par::ScheduleReport& report,
                             obs::JsonWriter* w) {
    w->BeginObject();
    w->Key("label").String(label);
    w->Key("mode").String(report.mode == par::ExecutionMode::kThreads
                              ? "threads"
                              : "simulated");
    w->Key("workers").Int(report.num_workers);
    w->Key("serial_seconds").Number(report.serial_seconds);
    w->Key("makespan_seconds").Number(report.makespan_seconds);
    w->Key("wall_seconds").Number(report.wall_seconds);
    w->Key("stolen_units").Int(report.stolen_units);
    w->Key("speedup").Number(report.speedup());
    w->Key("measured_speedup").Number(report.measured_speedup());
    w->Key("initial_units").BeginArray();
    for (int units : report.initial_units) w->Int(units);
    w->EndArray();
    w->Key("executed_units").BeginArray();
    for (int units : report.executed_units) w->Int(units);
    w->EndArray();
    w->EndObject();
  }

  std::string name_;
  std::vector<std::pair<std::string, double>> phases_;
  std::vector<std::pair<std::string, par::ScheduleReport>> schedules_;
  std::vector<std::pair<std::string, double>> results_;
};

}  // namespace rock::bench

