// Reproduces Figure 4(g): error-detection running time per application —
// Rock vs Rock_noML / T5s / RB / SparkSQL / Presto.
//
// Paper shape: Rock beats every baseline except Rock_noML; the SQL engines
// (REE++s translated to SQL with ML predicates as UDFs, no blocking, no
// partial-valuation reuse) and the per-cell ML scorers are far slower.

#include "bench/bench_common.h"

namespace rock::bench {
namespace {

void RunApp(const std::string& name, size_t rows) {
  AppContext app = MakeApp(name, rows);

  RockSetup rock_setup = PrepareRock(app, core::Variant::kRock);
  // Add a pure-ML matching rule (no equality join): the shape whose cost
  // is governed by blocking — exactly what generic SQL engines lack.
  {
    const Schema& schema = app.data.db.schema().relation(0);
    std::string attr = schema.AttributeIndex("name") >= 0 ? "name"
                       : schema.AttributeIndex("recipient") >= 0
                           ? "recipient"
                           : schema.AttributeName(1);
    std::string text = schema.name() + "(t0) ^ " + schema.name() +
                       "(t1) ^ MER(t0[" + attr + "], t1[" + attr +
                       "]) -> t0.eid = t1.eid";
    auto rule = rules::ParseRee(text, app.data.db.schema());
    if (rule.ok()) {
      rule->id = "ml_only_er";
      rock_setup.rules.push_back(std::move(*rule));
    }
  }
  Timer rock_timer;
  auto rock_report = rock_setup.rock->DetectErrors(rock_setup.rules);
  double rock_time = rock_timer.ElapsedSeconds();

  RockSetup noml_setup = PrepareRock(app, core::Variant::kNoMl);
  Timer noml_timer;
  noml_setup.rock->DetectErrors(noml_setup.rules);
  double noml_time = noml_timer.ElapsedSeconds();

  baselines::T5sModel t5s;
  t5s.Train(app.data.db);
  Timer t5s_timer;
  t5s.Detect(app.data.db);
  double t5s_time = t5s_timer.ElapsedSeconds();

  std::vector<std::pair<int, int64_t>> tuples;
  std::vector<std::tuple<int, int64_t, int>> errors;
  LabeledSample(app.data, 0.5, &tuples, &errors);
  baselines::RbCleaner rb;
  rb.Train(app.data.db, tuples, errors);
  Timer rb_timer;
  rb.Detect(app.data.db);
  double rb_time = rb_timer.ElapsedSeconds();

  // SparkSQL stand-in: generic SQL engine — hash joins, ML UDFs evaluated
  // exhaustively (no blocking).
  rules::EvalContext ctx;
  ctx.db = &app.data.db;
  ctx.graph = &app.data.graph;
  ctx.models = rock_setup.rock->models();
  baselines::NaiveSqlEngine spark(ctx);
  Timer spark_timer;
  spark.Detect(rock_setup.rules);
  double spark_time = spark_timer.ElapsedSeconds();

  // Presto stand-in: same queries via block-nested-loop execution (a
  // federated engine without local index structures).
  detect::DetectorOptions nested_options;
  nested_options.use_ml_blocking = false;
  nested_options.block_rows = 1 << 20;  // one giant block = nested loop
  detect::ErrorDetector nested(ctx, nested_options);
  par::ScheduleReport unused;
  Timer presto_timer;
  nested.DetectParallel(rock_setup.rules, 1, &unused);
  double presto_time = presto_timer.ElapsedSeconds();

  PrintRow(app.name, {rock_time, noml_time, t5s_time, rb_time, spark_time,
                      presto_time}, "%10.2f");
  (void)rock_report;
}

}  // namespace
}  // namespace rock::bench

int main() {
  rock::bench::PrintHeader(
      "Figure 4(g)",
      "Error detection time (s): Rock vs baselines and SQL engines");
  rock::bench::PrintColumns(
      {"Rock", "Rock_noML", "T5s", "RB", "SparkSQL", "Presto"});
  rock::bench::RunApp("Bank", 500);
  rock::bench::RunApp("Logistics", 700);
  rock::bench::RunApp("Sales", 500);
  std::printf("\nExpected shape: Rock fastest (except Rock_noML); SQL "
              "engines slowest (no ML blocking / no HyperCube).\n");
  return 0;
}
