// Reproduces Figure 4(h): parallel scalability of error detection on the
// Logistics workload, varying the number of workers n = 4..20.
//
// Paper shape: running time decreases monotonically; Rock is 3.36× faster
// at n=20 than at n=4 (parallel scalability). Two sections:
//
//  1. Simulated mode — work units run once with measured durations and the
//     schedule (consistent-hash placement + work stealing) is replayed from
//     those durations, so the curve *shape* is hardware independent and
//     reproducible on a 1-core CI runner (see DESIGN.md's substitution
//     table).
//  2. Threaded mode — the same units run under real worker threads;
//     measured wall-clock is reported next to the simulated makespan so the
//     model can be checked against reality on multi-core hosts.

#include <thread>

#include "bench/bench_common.h"
#include "bench/bench_telemetry.h"

namespace rock::bench {
namespace {

detect::ErrorDetector MakeDetector(AppContext& app, RockSetup& setup,
                                   par::ExecutionMode mode) {
  rules::EvalContext ctx;
  ctx.db = &app.data.db;
  ctx.graph = &app.data.graph;
  ctx.models = setup.rock->models();
  detect::DetectorOptions options;
  options.block_rows = 48;  // fine-grained HyperCube blocks
  options.execution_mode = mode;
  return detect::ErrorDetector(ctx, options);
}

void RunSimulated(AppContext& app, RockSetup& setup,
                  BenchTelemetry* telemetry) {
  detect::ErrorDetector detector =
      MakeDetector(app, setup, par::ExecutionMode::kSimulated);
  std::printf("-- simulated schedule (deterministic curve shape) --\n");
  std::printf("%8s %14s %14s %10s %8s\n", "workers", "makespan(s)",
              "serial(s)", "speedup", "stolen");
  double t4 = 0.0, t20 = 0.0;
  for (int workers : {4, 8, 12, 16, 20}) {
    par::ScheduleReport schedule;
    detector.DetectParallel(setup.rules, workers, &schedule);
    telemetry->AddSchedule("simulated/w" + std::to_string(workers),
                           schedule);
    std::printf("%8d %14.4f %14.4f %9.2fx %8d\n", workers,
                schedule.makespan_seconds, schedule.serial_seconds,
                schedule.speedup(), schedule.stolen_units);
    if (workers == 4) t4 = schedule.makespan_seconds;
    if (workers == 20) t20 = schedule.makespan_seconds;
  }
  double scaling = t20 > 0 ? t4 / t20 : 0.0;
  telemetry->AddResult("simulated_speedup_n4_to_n20", scaling);
  std::printf("\nSpeedup from n=4 to n=20: %.2fx (paper reports 3.36x)\n",
              scaling);
}

void RunThreaded(AppContext& app, RockSetup& setup,
                 BenchTelemetry* telemetry) {
  unsigned cores = std::thread::hardware_concurrency();
  std::printf(
      "\n-- threaded execution (measured wall-clock; host has %u cores) "
      "--\n",
      cores);
  std::printf("%8s %14s %14s %12s %12s %8s\n", "workers", "wall(s)",
              "serial(s)", "measured", "simulated", "stolen");
  double wall1 = 0.0, wall4 = 0.0;
  for (int workers : {1, 2, 4, 8}) {
    detect::ErrorDetector detector =
        MakeDetector(app, setup, par::ExecutionMode::kThreads);
    par::ScheduleReport schedule;
    detector.DetectParallel(setup.rules, workers, &schedule);
    telemetry->AddSchedule("threads/w" + std::to_string(workers), schedule);
    std::printf("%8d %14.4f %14.4f %11.2fx %11.2fx %8d\n", workers,
                schedule.wall_seconds, schedule.serial_seconds,
                schedule.measured_speedup(), schedule.speedup(),
                schedule.stolen_units);
    if (workers == 1) wall1 = schedule.wall_seconds;
    if (workers == 4) wall4 = schedule.wall_seconds;
  }
  double measured = wall4 > 0 ? wall1 / wall4 : 0.0;
  telemetry->AddResult("threaded_speedup_w1_to_w4", measured);
  std::printf(
      "\nMeasured wall-clock speedup, 4 vs 1 workers: %.2fx "
      "(expect > 1.5x on a 4+ core host; ~1x on a 1-core runner)\n",
      measured);
}

void Run() {
  BenchTelemetry telemetry("fig4_scale_ed");
  Timer total;
  Timer phase;
  AppContext app = MakeApp("Logistics", 500);
  RockSetup setup = PrepareRock(app, core::Variant::kRock);
  telemetry.AddPhase("prepare", phase.ElapsedSeconds());
  phase.Reset();
  RunSimulated(app, setup, &telemetry);
  telemetry.AddPhase("simulated", phase.ElapsedSeconds());
  phase.Reset();
  RunThreaded(app, setup, &telemetry);
  telemetry.AddPhase("threaded", phase.ElapsedSeconds());
  telemetry.AddPhase("total", total.ElapsedSeconds());
  telemetry.Emit();
}

}  // namespace
}  // namespace rock::bench

int main(int argc, char** argv) {
  rock::bench::ServeGuard serve(&argc, argv);
  rock::bench::PrintHeader(
      "Figure 4(h)", "Logistics-ED parallel scalability, n = 4..20 workers");
  rock::bench::Run();
  return 0;
}
