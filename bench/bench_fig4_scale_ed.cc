// Reproduces Figure 4(h): parallel scalability of error detection on the
// Logistics workload, varying the number of workers n = 4..20.
//
// Paper shape: running time decreases monotonically; Rock is 3.36× faster
// at n=20 than at n=4 (parallel scalability). Here work units are executed
// once with measured durations and the schedule (consistent-hash placement
// + work stealing) is simulated from those durations, so the curve shape
// is hardware-independent; see DESIGN.md's substitution table.

#include "bench/bench_common.h"

namespace rock::bench {
namespace {

void Run() {
  AppContext app = MakeApp("Logistics", 500);
  RockSetup setup = PrepareRock(app, core::Variant::kRock);
  rules::EvalContext ctx;
  ctx.db = &app.data.db;
  ctx.graph = &app.data.graph;
  ctx.models = setup.rock->models();
  detect::DetectorOptions options;
  options.block_rows = 48;  // fine-grained HyperCube blocks
  detect::ErrorDetector detector(ctx, options);

  std::printf("%8s %14s %14s %10s %8s\n", "workers", "makespan(s)",
              "serial(s)", "speedup", "stolen");
  double t4 = 0.0, t20 = 0.0;
  for (int workers : {4, 8, 12, 16, 20}) {
    par::ScheduleReport schedule;
    detector.DetectParallel(setup.rules, workers, &schedule);
    std::printf("%8d %14.4f %14.4f %9.2fx %8d\n", workers,
                schedule.makespan_seconds, schedule.serial_seconds,
                schedule.speedup(), schedule.stolen_units);
    if (workers == 4) t4 = schedule.makespan_seconds;
    if (workers == 20) t20 = schedule.makespan_seconds;
  }
  std::printf("\nSpeedup from n=4 to n=20: %.2fx (paper reports 3.36x)\n",
              t20 > 0 ? t4 / t20 : 0.0);
}

}  // namespace
}  // namespace rock::bench

int main() {
  rock::bench::PrintHeader(
      "Figure 4(h)", "Logistics-ED parallel scalability, n = 4..20 workers");
  rock::bench::Run();
  return 0;
}
