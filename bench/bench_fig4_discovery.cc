// Reproduces Figure 4(a)-(c): rule-discovery time per task for Bank,
// Logistics and Sales — Rock vs Rock_noML vs ES vs T5s vs RB.
//
// Paper shape: Rock is fastest among rule-discovery approaches aside from
// Rock_noML (which skips ML predicates and is faster but less accurate);
// ES (evidence sets without pruning), T5s (language-model fine-tuning) and
// RB (feature engineering) are orders of magnitude slower — the paper caps
// them at "could not finish within one day".

#include "bench/bench_common.h"

#include "src/discovery/evidence.h"
#include "src/rules/eval.h"

namespace rock::bench {
namespace {

/// ML pair-model bindings per application (the predicate pool the miner
/// may embed, per §5.1's pre-trained library).
discovery::PredicateSpaceOptions SpaceOptionsFor(const std::string& app) {
  discovery::PredicateSpaceOptions options;
  options.max_constants_per_attr = 2;
  if (app == "Bank") {
    options.ml_bindings = {{"MER", {"name"}}};
  } else if (app == "Logistics") {
    options.ml_bindings = {{"MER", {"recipient"}}};
  } else {
    options.ml_bindings = {{"MER", {"name"}}};
  }
  return options;
}

/// Rock / Rock_noML discovery over the task's relations.
double TimeRockDiscovery(AppContext& app, core::Variant variant,
                         size_t* rules_found) {
  core::RockOptions options;
  options.variant = variant;
  options.miner.max_evidence_rows = 40000;
  options.miner.min_support_rows = 4;
  options.miner.fdx_min_correlation = 0.02;
  core::Rock rock(&app.data.db, &app.data.graph, options);
  rock.TrainModels(app.spec);
  Timer timer;
  auto mined = rock.DiscoverRules(SpaceOptionsFor(app.name));
  rock.DiscoverPolynomials();  // §5.4 polynomial discovery is part of RD
  if (rules_found != nullptr) *rules_found = mined.size();
  return timer.ElapsedSeconds();
}

double TimeEsDiscovery(AppContext& app) {
  core::Rock rock(&app.data.db, &app.data.graph);
  rock.TrainModels(app.spec);
  rules::EvalContext ctx;
  ctx.db = &app.data.db;
  ctx.models = rock.models();
  rules::Evaluator eval(ctx);
  baselines::EsMiner miner;
  Timer timer;
  for (size_t rel = 0; rel < app.data.db.num_relations(); ++rel) {
    auto space = discovery::BuildPairSpace(
        app.data.db, static_cast<int>(rel), SpaceOptionsFor(app.name));
    miner.Mine(eval, space);
  }
  return timer.ElapsedSeconds();
}

double TimeT5sTraining(AppContext& app) {
  baselines::T5sModel model;
  Timer timer;
  model.Train(app.data.db);
  return timer.ElapsedSeconds();
}

double TimeRbTraining(AppContext& app) {
  std::vector<std::pair<int, int64_t>> tuples;
  std::vector<std::tuple<int, int64_t, int>> errors;
  LabeledSample(app.data, 0.5, &tuples, &errors);
  baselines::RbCleaner cleaner;
  Timer timer;
  cleaner.Train(app.data.db, tuples, errors);
  return timer.ElapsedSeconds();
}

void RunApp(const std::string& name, size_t rows) {
  std::printf("\n--- %s: rule discovery time (seconds) ---\n", name.c_str());
  PrintColumns({"Rock", "Rock_noML", "ES", "T5s", "RB"});
  AppContext app = MakeApp(name, rows);
  // Discovery is per rule set, shared by the app's tasks; the paper's
  // per-task bars differ by rule subsets — here one discovery run feeds
  // all four tasks, so the row is the per-app discovery cost.
  size_t rock_rules = 0;
  double rock = TimeRockDiscovery(app, core::Variant::kRock, &rock_rules);
  double noml = TimeRockDiscovery(app, core::Variant::kNoMl, nullptr);
  double es = TimeEsDiscovery(app);
  double t5s = TimeT5sTraining(app);
  double rb = TimeRbTraining(app);
  PrintRow("all tasks", {rock, noml, es, t5s, rb}, "%10.2f");
  std::printf("Rock mined %zu REE++s. Expected shape: Rock_noML <= Rock "
              "<< ES, T5s, RB.\n", rock_rules);
}

}  // namespace
}  // namespace rock::bench

int main() {
  rock::bench::PrintHeader(
      "Figure 4(a)-(c)",
      "Rule discovery time: Rock vs Rock_noML / ES / T5s / RB");
  rock::bench::RunApp("Bank", 300);
  rock::bench::RunApp("Logistics", 400);
  rock::bench::RunApp("Sales", 300);
  return 0;
}
