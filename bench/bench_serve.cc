// Serving-path benchmark: boots a core::Rock engine and a serve::RockServer
// in-process, then drives it with the closed-loop load generator
// (src/serve/loadgen.h) and reports request latency percentiles and
// throughput. Emits BENCH_serve.json with a "serve" block that CI's
// serve-smoke step validates via scripts/check_bench_json.py --require-serve.
//
// Flags (all optional):
//   --clients=N     concurrent closed-loop clients        (default 4)
//   --warmup=N      unmeasured requests per client        (default 20)
//   --measure=N     measured requests per client          (default 200)
//   --mix=I:D:E     ingest:detect:explain weights         (default 1:8:1)
//   --seed=N        load-plan RNG seed                    (default 42)
//   --rows=N        bank rows in the served database      (default 600)
//   --port=N        drive an already-running rockd on this port instead of
//                   booting an engine+server in-process (CI's serve-smoke
//                   job boots rockd separately and points this flag at it)
//   --shutdown      after the load run, send the shutdown verb so the
//                   external rockd drains and exits
// plus the ServeGuard flags (--serve, --profile, ...) every bench accepts.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "bench/bench_common.h"
#include "bench/bench_telemetry.h"
#include "src/chase/chase.h"
#include "src/common/timer.h"
#include "src/core/engine.h"
#include "src/obs/exporters.h"
#include "src/serve/client.h"
#include "src/serve/loadgen.h"
#include "src/serve/server.h"
#include "src/workload/generator.h"

namespace rock::bench {
namespace {

struct Flags {
  int clients = 4;
  int warmup = 20;
  int measure = 200;
  double ingest_weight = 1.0;
  double detect_weight = 8.0;
  double explain_weight = 1.0;
  uint64_t seed = 42;
  size_t rows = 600;
  int port = 0;
  bool send_shutdown = false;
};

Flags ParseFlags(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--clients=", 0) == 0) {
      flags.clients = std::atoi(arg.c_str() + 10);
    } else if (arg.rfind("--warmup=", 0) == 0) {
      flags.warmup = std::atoi(arg.c_str() + 9);
    } else if (arg.rfind("--measure=", 0) == 0) {
      flags.measure = std::atoi(arg.c_str() + 10);
    } else if (arg.rfind("--seed=", 0) == 0) {
      flags.seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
    } else if (arg.rfind("--rows=", 0) == 0) {
      flags.rows = static_cast<size_t>(std::atoll(arg.c_str() + 7));
    } else if (arg.rfind("--port=", 0) == 0) {
      flags.port = std::atoi(arg.c_str() + 7);
    } else if (arg == "--shutdown") {
      flags.send_shutdown = true;
    } else if (arg.rfind("--mix=", 0) == 0) {
      double i_w = 0, d_w = 0, e_w = 0;
      if (std::sscanf(arg.c_str() + 6, "%lf:%lf:%lf", &i_w, &d_w, &e_w) ==
          3) {
        flags.ingest_weight = i_w;
        flags.detect_weight = d_w;
        flags.explain_weight = e_w;
      } else {
        std::fprintf(stderr, "bad --mix, want I:D:E, got %s\n", arg.c_str());
        std::exit(2);
      }
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      std::exit(2);
    }
  }
  return flags;
}

/// Builds the "serve" block of BENCH_serve.json with its own writer so
/// BenchTelemetry can splice it in verbatim via AddBlock().
std::string ServeBlockJson(const Flags& flags,
                           const serve::LoadReport& report) {
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("clients").Int(flags.clients);
  w.Key("warmup_requests").Int(flags.warmup);
  w.Key("measure_requests").Int(flags.measure);
  w.Key("seed").Uint(flags.seed);
  w.Key("mix").BeginObject();
  w.Key("ingest").Uint(report.ingest_requests);
  w.Key("detect").Uint(report.detect_requests);
  w.Key("explain").Uint(report.explain_requests);
  w.Key("ping").Uint(report.ping_requests);
  w.EndObject();
  w.Key("measured_requests").Uint(report.latencies_seconds.size());
  w.Key("error_responses").Uint(report.error_responses);
  w.Key("latency_seconds").BeginObject();
  w.Key("p50").Number(report.LatencyPercentile(0.50));
  w.Key("p95").Number(report.LatencyPercentile(0.95));
  w.Key("p99").Number(report.LatencyPercentile(0.99));
  w.Key("max").Number(report.LatencyPercentile(1.0));
  w.EndObject();
  w.Key("throughput_rps").Number(report.throughput_rps);
  w.Key("measure_wall_seconds").Number(report.measure_wall_seconds);
  w.EndObject();
  return w.str();
}

int Run(const Flags& flags) {
  BenchTelemetry telemetry("serve");

  Timer boot;
  // Generated even in external mode: the ingest pool draws from it, and
  // rockd boots the same bank schema so the tuples are compatible.
  workload::GeneratorOptions data_options;
  data_options.rows = flags.rows;
  data_options.error_rate = 0.08;
  data_options.seed = 17;
  workload::GeneratedData data = workload::MakeBankData(data_options);

  std::unique_ptr<core::Rock> rock;
  std::unique_ptr<serve::RockServer> server;
  std::vector<std::tuple<int32_t, int64_t, int32_t>> explain_targets;
  int port = flags.port;
  if (port == 0) {
    rock = std::make_unique<core::Rock>(&data.db, &data.graph);
    core::ModelTrainingSpec spec;
    spec.rank_targets = {{"Customer", "city"}};
    spec.monotone_attrs = {{"Customer", "points"}};
    spec.path_synonyms = {{"area", {"AreaOf"}}};
    rock->TrainModels(spec);
    rock->DiscoverPolynomials();
    Status activated = rock->ActivateRules(data.rule_text);
    if (!activated.ok()) {
      std::fprintf(stderr, "rule activation failed: %s\n",
                   activated.ToString().c_str());
      return 1;
    }
    // A correction pass fills the fix store so the mix's explain requests
    // walk real proof trees instead of the empty-proof fast path.
    core::CorrectionResult correction;
    auto engine = rock->CorrectErrors(rock->active_rules(),
                                      data.clean_tuples, &correction);
    if (engine != nullptr) {
      for (const chase::CellFix& fix : engine->CellFixes()) {
        explain_targets.emplace_back(fix.rel, fix.tid, fix.attr);
        if (explain_targets.size() >= 8) break;
      }
    }
    auto started = serve::RockServer::Start(rock.get(), {});
    if (!started.ok()) {
      std::fprintf(stderr, "server start failed: %s\n",
                   started.status().ToString().c_str());
      return 1;
    }
    server = std::move(started).value();
    port = server->port();
    std::printf("rockd in-process on port %d: %zu rows, %zu rules, "
                "%zu explain targets\n",
                port, flags.rows, rock->active_rules().size(),
                explain_targets.size());
  } else {
    std::printf("driving external rockd on port %d\n", port);
  }
  // Without a known fix store, explain a never-fixed cell: the empty-proof
  // path is still a full protocol round trip.
  if (explain_targets.empty()) explain_targets = {{0, 1, 1}};
  telemetry.AddPhase("boot", boot.ElapsedSeconds());

  serve::LoadGenOptions load;
  load.port = port;
  load.clients = flags.clients;
  load.warmup_requests = flags.warmup;
  load.measure_requests = flags.measure;
  load.seed = flags.seed;
  load.ingest_weight = flags.ingest_weight;
  load.detect_weight = flags.detect_weight;
  load.explain_weight = flags.explain_weight;
  load.ingest_batch_rows = 4;
  load.ingest_rel = 0;
  if (flags.ingest_weight > 0) {
    // Ingest bodies: copies of the first few Customer rows, tid/eid
    // cleared so the server assigns fresh ids.
    const auto& customers = data.db.relation(0);
    for (size_t t = 0; t < customers.size() && load.pool.size() < 16; ++t) {
      Tuple sample = customers.tuple(t);
      sample.tid = -1;
      sample.eid = -1;
      load.pool.push_back(std::move(sample));
    }
  }
  load.detect_scope = serve::DetectScope::kSession;
  load.explain_targets = explain_targets;

  Timer load_timer;
  Result<serve::LoadReport> report = serve::RunLoad(load);
  if (!report.ok()) {
    std::fprintf(stderr, "load run failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  telemetry.AddPhase("load", load_timer.ElapsedSeconds());

  if (flags.send_shutdown) {
    auto client = serve::Client::Connect(port);
    if (!client.ok()) {
      std::fprintf(stderr, "shutdown connect failed: %s\n",
                   client.status().ToString().c_str());
      return 1;
    }
    Status shutdown = (*client)->Shutdown();
    if (!shutdown.ok()) {
      std::fprintf(stderr, "shutdown failed: %s\n",
                   shutdown.ToString().c_str());
      return 1;
    }
    std::printf("sent shutdown; server is draining\n");
  }
  if (server != nullptr) {
    server->BeginDrain();
    server->WaitUntilStopped();
  }

  const double p50 = report->LatencyPercentile(0.50);
  const double p95 = report->LatencyPercentile(0.95);
  const double p99 = report->LatencyPercentile(0.99);
  std::printf("\n%-10s %10s %10s %10s %12s %8s\n", "clients", "p50_ms",
              "p95_ms", "p99_ms", "rps", "errors");
  std::printf("%-10d %10.3f %10.3f %10.3f %12.1f %8llu\n", flags.clients,
              p50 * 1e3, p95 * 1e3, p99 * 1e3, report->throughput_rps,
              static_cast<unsigned long long>(report->error_responses));
  std::printf("mix: ingest=%llu detect=%llu explain=%llu ping=%llu "
              "(measured over %zu requests)\n",
              static_cast<unsigned long long>(report->ingest_requests),
              static_cast<unsigned long long>(report->detect_requests),
              static_cast<unsigned long long>(report->explain_requests),
              static_cast<unsigned long long>(report->ping_requests),
              report->latencies_seconds.size());

  telemetry.AddResult("latency_p50_seconds", p50);
  telemetry.AddResult("latency_p95_seconds", p95);
  telemetry.AddResult("latency_p99_seconds", p99);
  telemetry.AddResult("throughput_rps", report->throughput_rps);
  telemetry.AddResult("error_responses",
                      static_cast<double>(report->error_responses));
  telemetry.AddBlock("serve", ServeBlockJson(flags, *report));
  telemetry.Emit();
  return report->error_responses == 0 ? 0 : 1;
}

}  // namespace
}  // namespace rock::bench

int main(int argc, char** argv) {
  rock::bench::ServeGuard serve(&argc, argv);
  rock::bench::PrintHeader(
      "rockd", "online serving latency/throughput (closed-loop clients)");
  return rock::bench::Run(rock::bench::ParseFlags(argc, argv));
}
