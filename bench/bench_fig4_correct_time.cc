// Reproduces Figure 4(k): error-correction running time per application —
// Rock and its variants vs iterated SQL engines and ML baselines.
//
// Paper shape: Rock_noC is fastest (single pass); Rock beats Rock_seq
// slightly (free task interleaving vs blind per-task iteration); the SQL
// engines, which re-run every query from scratch per chase round, are
// >= 33x slower; RB's feature generation dominates its cost.

#include "bench/bench_common.h"

namespace rock::bench {
namespace {

double RockEcTime(const std::string& name, size_t rows,
                  core::Variant variant, int* rounds = nullptr) {
  AppContext app = MakeApp(name, rows);
  RockSetup setup = PrepareRock(app, variant);
  Timer timer;
  core::CorrectionResult result;
  auto engine = setup.rock->CorrectErrors(setup.rules,
                                          app.data.clean_tuples, &result);
  (void)engine;
  if (rounds != nullptr) *rounds = std::max(1, result.chase.rounds);
  return timer.ElapsedSeconds();
}

double SqlEcTime(const std::string& name, size_t rows, bool nested_loop,
                 int chase_rounds) {
  // "To simulate the chase of Rock, we iteratively executed SQL ... until
  // no more fixes can be generated" (§6 Exp-3): one full re-execution of
  // every violation query per chase round — a generic engine cannot
  // restrict later rounds to the dirty delta the way the chase does.
  AppContext app = MakeApp(name, rows);
  RockSetup setup = PrepareRock(app, core::Variant::kRock);
  rules::EvalContext ctx;
  ctx.db = &app.data.db;
  ctx.graph = &app.data.graph;
  ctx.models = setup.rock->models();
  Timer timer;
  if (nested_loop) {
    // Presto stand-in: block-nested-loop per round.
    detect::DetectorOptions options;
    options.use_ml_blocking = false;
    options.block_rows = 1 << 20;
    detect::ErrorDetector detector(ctx, options);
    par::ScheduleReport unused;
    for (int round = 0; round < chase_rounds; ++round) {
      detector.DetectParallel(setup.rules, 1, &unused);
    }
  } else {
    baselines::NaiveSqlEngine engine(ctx);
    for (int round = 0; round < chase_rounds; ++round) {
      engine.Detect(setup.rules);
    }
  }
  return timer.ElapsedSeconds();
}

double T5sEcTime(const std::string& name, size_t rows) {
  AppContext app = MakeApp(name, rows);
  baselines::T5sModel model;
  model.Train(app.data.db);
  Timer timer;
  auto report = model.Detect(app.data.db);
  for (const auto& error : report.errors) {
    for (const auto& cell : error.cells) {
      if (cell.attr < 0) continue;
      const Relation& rel = app.data.db.relation(cell.rel);
      int row = rel.RowOfTid(cell.tid);
      if (row < 0) continue;
      model.SuggestCorrection(app.data.db, cell.rel,
                              rel.tuple(static_cast<size_t>(row)),
                              cell.attr);
    }
  }
  return timer.ElapsedSeconds();
}

double RbEcTime(const std::string& name, size_t rows) {
  AppContext app = MakeApp(name, rows);
  std::vector<std::pair<int, int64_t>> tuples;
  std::vector<std::tuple<int, int64_t, int>> errors;
  LabeledSample(app.data, 0.5, &tuples, &errors);
  baselines::RbCleaner cleaner;
  cleaner.Train(app.data.db, tuples, errors);
  Timer timer;
  auto report = cleaner.Detect(app.data.db);
  for (const auto& error : report.errors) {
    for (const auto& cell : error.cells) {
      if (cell.attr < 0) continue;
      const Relation& rel = app.data.db.relation(cell.rel);
      int row = rel.RowOfTid(cell.tid);
      if (row < 0) continue;
      cleaner.SuggestCorrection(app.data.db, cell.rel,
                                rel.tuple(static_cast<size_t>(row)),
                                cell.attr);
    }
  }
  return timer.ElapsedSeconds();
}

void RunApp(const std::string& name, size_t rows) {
  int rounds = 1;
  double rock = RockEcTime(name, rows, core::Variant::kRock, &rounds);
  PrintRow(name,
           {rock, RockEcTime(name, rows, core::Variant::kSequential),
            RockEcTime(name, rows, core::Variant::kNoChase),
            SqlEcTime(name, rows, false, rounds),
            SqlEcTime(name, rows, true, rounds), T5sEcTime(name, rows),
            RbEcTime(name, rows)},
           "%10.2f");
}

}  // namespace
}  // namespace rock::bench

int main() {
  rock::bench::PrintHeader(
      "Figure 4(k)", "Error correction time (s) per application");
  rock::bench::PrintColumns({"Rock", "Rock_seq", "Rock_noC", "SparkSQL",
                             "Presto", "T5s", "RB"});
  rock::bench::RunApp("Bank", 300);
  rock::bench::RunApp("Logistics", 400);
  rock::bench::RunApp("Sales", 300);
  std::printf("\nExpected shape: Rock_noC < Rock <= Rock_seq << SQL "
              "engines; T5s/RB costly per cell.\n");
  return 0;
}
