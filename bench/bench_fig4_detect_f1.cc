// Reproduces Figure 4(d)-(f): error-detection F-measure per task for Bank,
// Logistics and Sales — Rock vs Rock_noML vs ES vs T5s vs RB.
//
// Paper shape: Rock wins every task; Rock_noML loses most on tasks that
// need ML predicates (ER-style name matching, numeric polynomials); T5s
// collapses on numeric-heavy tasks (Sales TPWT); ES has lower recall (it
// optimizes precision only); RB sits in between.

#include "bench/bench_common.h"

#include "src/discovery/evidence.h"

namespace rock::bench {
namespace {

std::set<std::pair<int, int64_t>> RockFlags(AppContext& app,
                                            core::Variant variant) {
  RockSetup setup = PrepareRock(app, variant);
  auto report = setup.rock->DetectErrors(setup.rules);
  return report.DirtyTuples();
}

std::set<std::pair<int, int64_t>> EsFlags(AppContext& app) {
  // ES detects with its own (exhaustively mined, precision-oriented,
  // ML-free) rules.
  core::Rock rock(&app.data.db, &app.data.graph);
  rules::EvalContext ctx;
  ctx.db = &app.data.db;
  rules::Evaluator eval(ctx);
  baselines::EsMiner miner(/*min_confidence=*/0.9);
  std::vector<rules::Ree> rules;
  discovery::PredicateSpaceOptions space_options;
  space_options.max_constants_per_attr = 0;
  for (size_t rel = 0; rel < app.data.db.num_relations(); ++rel) {
    auto space = discovery::BuildPairSpace(
        app.data.db, static_cast<int>(rel), space_options);
    for (auto& mined : miner.Mine(eval, space)) {
      rules.push_back(std::move(mined.rule));
    }
  }
  detect::ErrorDetector detector(ctx);
  return detector.Detect(rules).DirtyTuples();
}

std::set<std::pair<int, int64_t>> T5sFlags(AppContext& app) {
  baselines::T5sModel model;
  model.Train(app.data.db);
  return model.Detect(app.data.db).DirtyTuples();
}

std::set<std::pair<int, int64_t>> RbFlags(AppContext& app) {
  std::vector<std::pair<int, int64_t>> tuples;
  std::vector<std::tuple<int, int64_t, int>> errors;
  LabeledSample(app.data, 0.5, &tuples, &errors);
  baselines::RbCleaner cleaner;
  cleaner.Train(app.data.db, tuples, errors);
  return cleaner.Detect(app.data.db).DirtyTuples();
}

void RunApp(const std::string& name, size_t rows) {
  std::printf("\n--- %s: error detection F-measure per task ---\n",
              name.c_str());
  AppContext app = MakeApp(name, rows);
  auto rock = RockFlags(app, core::Variant::kRock);
  auto noml = RockFlags(app, core::Variant::kNoMl);
  auto es = EsFlags(app);
  auto t5s = T5sFlags(app);
  auto rb = RbFlags(app);
  PrintColumns({"Rock", "Rock_noML", "ES", "T5s", "RB"});
  for (const workload::TaskFilter& task : app.tasks) {
    PrintRow(task.name,
             {workload::ScoreDetectionTask(app.data, rock, task).f1(),
              workload::ScoreDetectionTask(app.data, noml, task).f1(),
              workload::ScoreDetectionTask(app.data, es, task).f1(),
              workload::ScoreDetectionTask(app.data, t5s, task).f1(),
              workload::ScoreDetectionTask(app.data, rb, task).f1()});
  }
}

}  // namespace
}  // namespace rock::bench

int main() {
  rock::bench::PrintHeader(
      "Figure 4(d)-(f)",
      "Error detection F1 per task: Rock vs Rock_noML / ES / T5s / RB");
  rock::bench::RunApp("Bank", 300);
  rock::bench::RunApp("Logistics", 400);
  rock::bench::RunApp("Sales", 300);
  std::printf("\nExpected shape: Rock highest everywhere; T5s weakest on "
              "numeric tasks (TPA/TPWT); ES recall-limited.\n");
  return 0;
}
