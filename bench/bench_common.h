#pragma once

// Shared setup for the figure-reproduction benchmarks. Each bench binary
// regenerates one figure of the paper's evaluation (§6, Figure 4); see
// DESIGN.md's per-experiment index and EXPERIMENTS.md for the recorded
// paper-vs-measured shapes.

#include <cstdio>
#include <string>
#include <vector>

#include "src/baselines/baselines.h"
#include "src/common/timer.h"
#include "src/core/engine.h"
#include "src/workload/generator.h"
#include "src/workload/scoring.h"

namespace rock::bench {

/// One application under test, with its generated data and Rock instance.
struct AppContext {
  std::string name;
  workload::GeneratedData data;
  std::vector<workload::TaskFilter> tasks;  // the paper's 4 tasks
  core::ModelTrainingSpec spec;
};

inline workload::GeneratorOptions DefaultGeneratorOptions(size_t rows) {
  workload::GeneratorOptions options;
  options.rows = rows;
  options.error_rate = 0.08;
  options.seed = 20240609;
  return options;
}

/// Builds the app's data + task filters + model-training spec.
inline AppContext MakeApp(const std::string& name, size_t rows) {
  using workload::InjectedError;
  AppContext app;
  app.name = name;
  app.data = workload::MakeAppData(name, DefaultGeneratorOptions(rows));
  if (name == "Bank") {
    app.tasks = {
        {"CNC", {InjectedError::kDuplicate}, {0}},
        {"CIC", {InjectedError::kConflict, InjectedError::kNull}, {1}},
        {"TPA", {InjectedError::kConflict, InjectedError::kNull}, {2}},
        {"ESClean", {}, {}},
    };
    app.spec.rank_targets = {{"Customer", "city"}};
    app.spec.monotone_attrs = {{"Customer", "points"}};
  } else if (name == "Logistics") {
    // Shipment attrs: street=2, area=3, seller_name=7.
    app.tasks = {
        {"RS", {InjectedError::kConflict, InjectedError::kNull}, {0}},
        {"RR", {InjectedError::kNull}, {0}},
        {"SN", {InjectedError::kConflict}, {0}},
        {"RClean", {}, {}},
    };
    app.spec.path_synonyms = {{"area", {"AreaOf"}}, {"city", {"CityOf"}}};
  } else {  // Sales
    app.tasks = {
        {"CIN", {InjectedError::kDuplicate, InjectedError::kConflict}, {0}},
        {"CCN", {InjectedError::kConflict}, {1}},
        {"TPWT", {InjectedError::kConflict, InjectedError::kNull}, {2}},
        {"SClean", {}, {}},
    };
    app.spec.rank_targets = {{"Client", "discount"}};
    app.spec.monotone_attrs = {{"Client", "lifetime_value"}};
  }
  return app;
}

/// A ready-to-run Rock with trained models, curated rules and polynomials.
struct RockSetup {
  std::unique_ptr<core::Rock> rock;
  std::vector<rules::Ree> rules;
};

inline RockSetup PrepareRock(AppContext& app, core::Variant variant) {
  RockSetup setup;
  core::RockOptions options;
  options.variant = variant;
  setup.rock = std::make_unique<core::Rock>(&app.data.db, &app.data.graph,
                                            options);
  setup.rock->TrainModels(app.spec);
  setup.rock->DiscoverPolynomials();
  auto rules = setup.rock->LoadRules(app.data.rule_text);
  if (rules.ok()) setup.rules = std::move(*rules);
  return setup;
}

/// Table helpers: the benches print aligned rows so the output reads like
/// the paper's figures.
inline void PrintHeader(const char* figure, const char* description) {
  std::printf("==================================================\n");
  std::printf("%s — %s\n", figure, description);
  std::printf("==================================================\n");
}

inline void PrintRow(const std::string& label,
                     const std::vector<double>& values,
                     const char* fmt = "%10.3f") {
  std::printf("%-12s", label.c_str());
  for (double v : values) {
    if (v < 0) {
      std::printf("%10s", "n/a");
    } else {
      std::printf(fmt, v);
    }
  }
  std::printf("\n");
}

inline void PrintColumns(const std::vector<std::string>& names) {
  std::printf("%-12s", "");
  for (const std::string& name : names) std::printf("%10s", name.c_str());
  std::printf("\n");
}

/// Labeled sample for the RB baseline (the "10,000 manually checked
/// tuples" stand-in): a fraction of the error log plus clean tuples.
inline void LabeledSample(
    const workload::GeneratedData& data, double fraction,
    std::vector<std::pair<int, int64_t>>* tuples,
    std::vector<std::tuple<int, int64_t, int>>* errors) {
  size_t take = static_cast<size_t>(
      fraction * static_cast<double>(data.clean_tuples.size()));
  for (size_t i = 0; i < take && i < data.clean_tuples.size(); ++i) {
    tuples->push_back(data.clean_tuples[i]);
  }
  size_t err_take = static_cast<size_t>(
      fraction * static_cast<double>(data.errors.size()));
  for (size_t i = 0; i < err_take && i < data.errors.size(); ++i) {
    const workload::ErrorLogEntry& entry = data.errors[i];
    if (entry.attr < 0) continue;
    tuples->emplace_back(entry.rel, entry.tid);
    errors->emplace_back(entry.rel, entry.tid, entry.attr);
  }
}

/// Scores a baseline's suggested cell corrections against the error log
/// (duplicates and stale entries count as unreachable for cell-level
/// correctors, exactly as in the paper: "TD of T5s ... not shown because
/// they do not support these operations").
inline workload::Prf ScoreBaselineCorrections(
    const workload::GeneratedData& data,
    const std::vector<std::tuple<int, int64_t, int, Value>>& fixes) {
  std::map<std::tuple<int, int64_t, int>, Value> truth;
  size_t total_errors = data.errors.size();
  for (const workload::ErrorLogEntry& entry : data.errors) {
    if (entry.type == workload::InjectedError::kConflict ||
        entry.type == workload::InjectedError::kNull) {
      truth[{entry.rel, entry.tid, entry.attr}] = entry.clean_value;
    }
  }
  workload::Prf prf;
  std::set<std::tuple<int, int64_t, int>> corrected;
  for (const auto& [rel, tid, attr, value] : fixes) {
    auto it = truth.find({rel, tid, attr});
    if (it != truth.end() && it->second == value) {
      corrected.insert({rel, tid, attr});
      ++prf.true_positives;
    } else {
      ++prf.false_positives;
    }
  }
  prf.false_negatives = total_errors - corrected.size();
  return prf;
}

}  // namespace rock::bench

