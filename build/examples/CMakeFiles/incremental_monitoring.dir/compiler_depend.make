# Empty compiler generated dependencies file for incremental_monitoring.
# This may be replaced when dependencies are built.
