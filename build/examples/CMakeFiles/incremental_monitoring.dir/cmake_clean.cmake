file(REMOVE_RECURSE
  "CMakeFiles/incremental_monitoring.dir/incremental_monitoring.cpp.o"
  "CMakeFiles/incremental_monitoring.dir/incremental_monitoring.cpp.o.d"
  "incremental_monitoring"
  "incremental_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/incremental_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
