# Empty dependencies file for logistics_imputation.
# This may be replaced when dependencies are built.
