file(REMOVE_RECURSE
  "CMakeFiles/logistics_imputation.dir/logistics_imputation.cpp.o"
  "CMakeFiles/logistics_imputation.dir/logistics_imputation.cpp.o.d"
  "logistics_imputation"
  "logistics_imputation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/logistics_imputation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
