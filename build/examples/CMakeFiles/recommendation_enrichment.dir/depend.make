# Empty dependencies file for recommendation_enrichment.
# This may be replaced when dependencies are built.
