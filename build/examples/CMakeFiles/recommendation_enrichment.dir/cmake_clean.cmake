file(REMOVE_RECURSE
  "CMakeFiles/recommendation_enrichment.dir/recommendation_enrichment.cpp.o"
  "CMakeFiles/recommendation_enrichment.dir/recommendation_enrichment.cpp.o.d"
  "recommendation_enrichment"
  "recommendation_enrichment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recommendation_enrichment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
