# Empty compiler generated dependencies file for csv_cleaning.
# This may be replaced when dependencies are built.
