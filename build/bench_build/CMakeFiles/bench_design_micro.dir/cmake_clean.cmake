file(REMOVE_RECURSE
  "../bench/bench_design_micro"
  "../bench/bench_design_micro.pdb"
  "CMakeFiles/bench_design_micro.dir/bench_design_micro.cc.o"
  "CMakeFiles/bench_design_micro.dir/bench_design_micro.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_design_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
