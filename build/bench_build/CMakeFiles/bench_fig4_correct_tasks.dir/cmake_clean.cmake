file(REMOVE_RECURSE
  "../bench/bench_fig4_correct_tasks"
  "../bench/bench_fig4_correct_tasks.pdb"
  "CMakeFiles/bench_fig4_correct_tasks.dir/bench_fig4_correct_tasks.cc.o"
  "CMakeFiles/bench_fig4_correct_tasks.dir/bench_fig4_correct_tasks.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_correct_tasks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
