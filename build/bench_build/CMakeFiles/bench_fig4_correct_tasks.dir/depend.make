# Empty dependencies file for bench_fig4_correct_tasks.
# This may be replaced when dependencies are built.
