file(REMOVE_RECURSE
  "../bench/bench_ablation_summary"
  "../bench/bench_ablation_summary.pdb"
  "CMakeFiles/bench_ablation_summary.dir/bench_ablation_summary.cc.o"
  "CMakeFiles/bench_ablation_summary.dir/bench_ablation_summary.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_summary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
