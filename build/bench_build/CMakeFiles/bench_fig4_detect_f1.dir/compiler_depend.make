# Empty compiler generated dependencies file for bench_fig4_detect_f1.
# This may be replaced when dependencies are built.
