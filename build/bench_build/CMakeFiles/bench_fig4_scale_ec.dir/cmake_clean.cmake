file(REMOVE_RECURSE
  "../bench/bench_fig4_scale_ec"
  "../bench/bench_fig4_scale_ec.pdb"
  "CMakeFiles/bench_fig4_scale_ec.dir/bench_fig4_scale_ec.cc.o"
  "CMakeFiles/bench_fig4_scale_ec.dir/bench_fig4_scale_ec.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_scale_ec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
