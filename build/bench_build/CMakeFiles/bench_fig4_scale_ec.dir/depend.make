# Empty dependencies file for bench_fig4_scale_ec.
# This may be replaced when dependencies are built.
