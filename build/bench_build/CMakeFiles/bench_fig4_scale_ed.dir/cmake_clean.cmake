file(REMOVE_RECURSE
  "../bench/bench_fig4_scale_ed"
  "../bench/bench_fig4_scale_ed.pdb"
  "CMakeFiles/bench_fig4_scale_ed.dir/bench_fig4_scale_ed.cc.o"
  "CMakeFiles/bench_fig4_scale_ed.dir/bench_fig4_scale_ed.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_scale_ed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
