# Empty dependencies file for bench_fig4_scale_ed.
# This may be replaced when dependencies are built.
