# Empty dependencies file for bench_fig4_correct_f1.
# This may be replaced when dependencies are built.
