file(REMOVE_RECURSE
  "../bench/bench_fig4_correct_f1"
  "../bench/bench_fig4_correct_f1.pdb"
  "CMakeFiles/bench_fig4_correct_f1.dir/bench_fig4_correct_f1.cc.o"
  "CMakeFiles/bench_fig4_correct_f1.dir/bench_fig4_correct_f1.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_correct_f1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
