# Empty dependencies file for rock.
# This may be replaced when dependencies are built.
