
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/baselines.cc" "src/CMakeFiles/rock.dir/baselines/baselines.cc.o" "gcc" "src/CMakeFiles/rock.dir/baselines/baselines.cc.o.d"
  "/root/repo/src/chase/chase.cc" "src/CMakeFiles/rock.dir/chase/chase.cc.o" "gcc" "src/CMakeFiles/rock.dir/chase/chase.cc.o.d"
  "/root/repo/src/chase/fix_store.cc" "src/CMakeFiles/rock.dir/chase/fix_store.cc.o" "gcc" "src/CMakeFiles/rock.dir/chase/fix_store.cc.o.d"
  "/root/repo/src/common/csv.cc" "src/CMakeFiles/rock.dir/common/csv.cc.o" "gcc" "src/CMakeFiles/rock.dir/common/csv.cc.o.d"
  "/root/repo/src/common/hash.cc" "src/CMakeFiles/rock.dir/common/hash.cc.o" "gcc" "src/CMakeFiles/rock.dir/common/hash.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/rock.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/rock.dir/common/logging.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/rock.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/rock.dir/common/rng.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/rock.dir/common/status.cc.o" "gcc" "src/CMakeFiles/rock.dir/common/status.cc.o.d"
  "/root/repo/src/common/strings.cc" "src/CMakeFiles/rock.dir/common/strings.cc.o" "gcc" "src/CMakeFiles/rock.dir/common/strings.cc.o.d"
  "/root/repo/src/core/engine.cc" "src/CMakeFiles/rock.dir/core/engine.cc.o" "gcc" "src/CMakeFiles/rock.dir/core/engine.cc.o.d"
  "/root/repo/src/core/quality.cc" "src/CMakeFiles/rock.dir/core/quality.cc.o" "gcc" "src/CMakeFiles/rock.dir/core/quality.cc.o.d"
  "/root/repo/src/crystal/hash_ring.cc" "src/CMakeFiles/rock.dir/crystal/hash_ring.cc.o" "gcc" "src/CMakeFiles/rock.dir/crystal/hash_ring.cc.o.d"
  "/root/repo/src/crystal/object_store.cc" "src/CMakeFiles/rock.dir/crystal/object_store.cc.o" "gcc" "src/CMakeFiles/rock.dir/crystal/object_store.cc.o.d"
  "/root/repo/src/detect/detector.cc" "src/CMakeFiles/rock.dir/detect/detector.cc.o" "gcc" "src/CMakeFiles/rock.dir/detect/detector.cc.o.d"
  "/root/repo/src/discovery/evidence.cc" "src/CMakeFiles/rock.dir/discovery/evidence.cc.o" "gcc" "src/CMakeFiles/rock.dir/discovery/evidence.cc.o.d"
  "/root/repo/src/discovery/feedback.cc" "src/CMakeFiles/rock.dir/discovery/feedback.cc.o" "gcc" "src/CMakeFiles/rock.dir/discovery/feedback.cc.o.d"
  "/root/repo/src/discovery/miner.cc" "src/CMakeFiles/rock.dir/discovery/miner.cc.o" "gcc" "src/CMakeFiles/rock.dir/discovery/miner.cc.o.d"
  "/root/repo/src/discovery/poly.cc" "src/CMakeFiles/rock.dir/discovery/poly.cc.o" "gcc" "src/CMakeFiles/rock.dir/discovery/poly.cc.o.d"
  "/root/repo/src/discovery/topk.cc" "src/CMakeFiles/rock.dir/discovery/topk.cc.o" "gcc" "src/CMakeFiles/rock.dir/discovery/topk.cc.o.d"
  "/root/repo/src/kg/graph.cc" "src/CMakeFiles/rock.dir/kg/graph.cc.o" "gcc" "src/CMakeFiles/rock.dir/kg/graph.cc.o.d"
  "/root/repo/src/ml/correlation.cc" "src/CMakeFiles/rock.dir/ml/correlation.cc.o" "gcc" "src/CMakeFiles/rock.dir/ml/correlation.cc.o.d"
  "/root/repo/src/ml/feature.cc" "src/CMakeFiles/rock.dir/ml/feature.cc.o" "gcc" "src/CMakeFiles/rock.dir/ml/feature.cc.o.d"
  "/root/repo/src/ml/her.cc" "src/CMakeFiles/rock.dir/ml/her.cc.o" "gcc" "src/CMakeFiles/rock.dir/ml/her.cc.o.d"
  "/root/repo/src/ml/library.cc" "src/CMakeFiles/rock.dir/ml/library.cc.o" "gcc" "src/CMakeFiles/rock.dir/ml/library.cc.o.d"
  "/root/repo/src/ml/linear.cc" "src/CMakeFiles/rock.dir/ml/linear.cc.o" "gcc" "src/CMakeFiles/rock.dir/ml/linear.cc.o.d"
  "/root/repo/src/ml/lsh.cc" "src/CMakeFiles/rock.dir/ml/lsh.cc.o" "gcc" "src/CMakeFiles/rock.dir/ml/lsh.cc.o.d"
  "/root/repo/src/ml/ranking.cc" "src/CMakeFiles/rock.dir/ml/ranking.cc.o" "gcc" "src/CMakeFiles/rock.dir/ml/ranking.cc.o.d"
  "/root/repo/src/ml/tree.cc" "src/CMakeFiles/rock.dir/ml/tree.cc.o" "gcc" "src/CMakeFiles/rock.dir/ml/tree.cc.o.d"
  "/root/repo/src/par/executor.cc" "src/CMakeFiles/rock.dir/par/executor.cc.o" "gcc" "src/CMakeFiles/rock.dir/par/executor.cc.o.d"
  "/root/repo/src/rules/classic.cc" "src/CMakeFiles/rock.dir/rules/classic.cc.o" "gcc" "src/CMakeFiles/rock.dir/rules/classic.cc.o.d"
  "/root/repo/src/rules/eval.cc" "src/CMakeFiles/rock.dir/rules/eval.cc.o" "gcc" "src/CMakeFiles/rock.dir/rules/eval.cc.o.d"
  "/root/repo/src/rules/parser.cc" "src/CMakeFiles/rock.dir/rules/parser.cc.o" "gcc" "src/CMakeFiles/rock.dir/rules/parser.cc.o.d"
  "/root/repo/src/rules/predicate.cc" "src/CMakeFiles/rock.dir/rules/predicate.cc.o" "gcc" "src/CMakeFiles/rock.dir/rules/predicate.cc.o.d"
  "/root/repo/src/rules/ree.cc" "src/CMakeFiles/rock.dir/rules/ree.cc.o" "gcc" "src/CMakeFiles/rock.dir/rules/ree.cc.o.d"
  "/root/repo/src/storage/dictionary.cc" "src/CMakeFiles/rock.dir/storage/dictionary.cc.o" "gcc" "src/CMakeFiles/rock.dir/storage/dictionary.cc.o.d"
  "/root/repo/src/storage/loader.cc" "src/CMakeFiles/rock.dir/storage/loader.cc.o" "gcc" "src/CMakeFiles/rock.dir/storage/loader.cc.o.d"
  "/root/repo/src/storage/relation.cc" "src/CMakeFiles/rock.dir/storage/relation.cc.o" "gcc" "src/CMakeFiles/rock.dir/storage/relation.cc.o.d"
  "/root/repo/src/storage/schema.cc" "src/CMakeFiles/rock.dir/storage/schema.cc.o" "gcc" "src/CMakeFiles/rock.dir/storage/schema.cc.o.d"
  "/root/repo/src/storage/stats.cc" "src/CMakeFiles/rock.dir/storage/stats.cc.o" "gcc" "src/CMakeFiles/rock.dir/storage/stats.cc.o.d"
  "/root/repo/src/storage/value.cc" "src/CMakeFiles/rock.dir/storage/value.cc.o" "gcc" "src/CMakeFiles/rock.dir/storage/value.cc.o.d"
  "/root/repo/src/workload/ecommerce.cc" "src/CMakeFiles/rock.dir/workload/ecommerce.cc.o" "gcc" "src/CMakeFiles/rock.dir/workload/ecommerce.cc.o.d"
  "/root/repo/src/workload/generator.cc" "src/CMakeFiles/rock.dir/workload/generator.cc.o" "gcc" "src/CMakeFiles/rock.dir/workload/generator.cc.o.d"
  "/root/repo/src/workload/scoring.cc" "src/CMakeFiles/rock.dir/workload/scoring.cc.o" "gcc" "src/CMakeFiles/rock.dir/workload/scoring.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
