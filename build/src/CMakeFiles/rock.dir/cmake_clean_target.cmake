file(REMOVE_RECURSE
  "librock.a"
)
