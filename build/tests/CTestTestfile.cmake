# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(baselines_workload_test "/root/repo/build/tests/baselines_workload_test")
set_tests_properties(baselines_workload_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(chase_test "/root/repo/build/tests/chase_test")
set_tests_properties(chase_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(common_test "/root/repo/build/tests/common_test")
set_tests_properties(common_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(core_test "/root/repo/build/tests/core_test")
set_tests_properties(core_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(detect_par_test "/root/repo/build/tests/detect_par_test")
set_tests_properties(detect_par_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(discovery_test "/root/repo/build/tests/discovery_test")
set_tests_properties(discovery_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(eval_extra_test "/root/repo/build/tests/eval_extra_test")
set_tests_properties(eval_extra_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(feedback_conflict_test "/root/repo/build/tests/feedback_conflict_test")
set_tests_properties(feedback_conflict_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(kg_crystal_test "/root/repo/build/tests/kg_crystal_test")
set_tests_properties(kg_crystal_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(loader_classic_test "/root/repo/build/tests/loader_classic_test")
set_tests_properties(loader_classic_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(ml_test "/root/repo/build/tests/ml_test")
set_tests_properties(ml_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(property_test "/root/repo/build/tests/property_test")
set_tests_properties(property_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(rules_test "/root/repo/build/tests/rules_test")
set_tests_properties(rules_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(storage_test "/root/repo/build/tests/storage_test")
set_tests_properties(storage_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;0;")
