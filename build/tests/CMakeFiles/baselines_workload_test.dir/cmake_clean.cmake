file(REMOVE_RECURSE
  "CMakeFiles/baselines_workload_test.dir/baselines_workload_test.cc.o"
  "CMakeFiles/baselines_workload_test.dir/baselines_workload_test.cc.o.d"
  "baselines_workload_test"
  "baselines_workload_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baselines_workload_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
