file(REMOVE_RECURSE
  "CMakeFiles/eval_extra_test.dir/eval_extra_test.cc.o"
  "CMakeFiles/eval_extra_test.dir/eval_extra_test.cc.o.d"
  "eval_extra_test"
  "eval_extra_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eval_extra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
