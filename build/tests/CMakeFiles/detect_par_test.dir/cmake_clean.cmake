file(REMOVE_RECURSE
  "CMakeFiles/detect_par_test.dir/detect_par_test.cc.o"
  "CMakeFiles/detect_par_test.dir/detect_par_test.cc.o.d"
  "detect_par_test"
  "detect_par_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/detect_par_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
