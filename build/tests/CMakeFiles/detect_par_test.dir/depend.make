# Empty dependencies file for detect_par_test.
# This may be replaced when dependencies are built.
