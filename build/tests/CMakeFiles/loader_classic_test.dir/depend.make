# Empty dependencies file for loader_classic_test.
# This may be replaced when dependencies are built.
