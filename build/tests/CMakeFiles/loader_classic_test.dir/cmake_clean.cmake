file(REMOVE_RECURSE
  "CMakeFiles/loader_classic_test.dir/loader_classic_test.cc.o"
  "CMakeFiles/loader_classic_test.dir/loader_classic_test.cc.o.d"
  "loader_classic_test"
  "loader_classic_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loader_classic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
