file(REMOVE_RECURSE
  "CMakeFiles/feedback_conflict_test.dir/feedback_conflict_test.cc.o"
  "CMakeFiles/feedback_conflict_test.dir/feedback_conflict_test.cc.o.d"
  "feedback_conflict_test"
  "feedback_conflict_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feedback_conflict_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
