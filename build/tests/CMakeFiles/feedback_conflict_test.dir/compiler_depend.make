# Empty compiler generated dependencies file for feedback_conflict_test.
# This may be replaced when dependencies are built.
