# Empty compiler generated dependencies file for kg_crystal_test.
# This may be replaced when dependencies are built.
