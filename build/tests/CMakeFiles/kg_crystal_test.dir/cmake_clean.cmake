file(REMOVE_RECURSE
  "CMakeFiles/kg_crystal_test.dir/kg_crystal_test.cc.o"
  "CMakeFiles/kg_crystal_test.dir/kg_crystal_test.cc.o.d"
  "kg_crystal_test"
  "kg_crystal_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kg_crystal_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
