#!/usr/bin/env python3
"""clang-tidy driver with a ratchet baseline.

Runs clang-tidy (checks from the checked-in .clang-tidy) over every
translation unit in the compilation database and diffs the aggregated
findings against scripts/clang_tidy_baseline.txt. Only NEW findings — a
(file, check) pair that is absent from the baseline, or whose count grew —
fail the run, so pre-existing debt doesn't block unrelated changes while
the total can only ratchet down.

Usage:
    scripts/run_clang_tidy.py --build-dir build            # diff mode
    scripts/run_clang_tidy.py --build-dir build \
        --update-baseline                                  # rewrite baseline
    scripts/run_clang_tidy.py --self-test                  # no clang-tidy

--cache FILE memoizes findings keyed on a hash of compile_commands.json +
.clang-tidy, so CI can restore the cache and skip the (slow) tidy run when
neither the build nor the check configuration changed.

Baseline format, one finding class per line, sorted:
    <repo-relative file>\t<check-name>\t<count>
"""

import argparse
import concurrent.futures
import hashlib
import json
import os
import re
import subprocess
import sys

# clang-tidy diagnostic: /abs/path/file.cc:12:5: warning: text [check-name]
DIAG_RE = re.compile(
    r"^(?P<file>[^\s:][^:]*):(?P<line>\d+):(?P<col>\d+): "
    r"(?:warning|error): .* \[(?P<checks>[^\]\s]+)\]$")

# Only first-party translation units are tidied.
SOURCE_PREFIXES = ("src/", "tests/", "bench/", "examples/")


def repo_root():
    return os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def load_compile_db(build_dir):
    path = os.path.join(build_dir, "compile_commands.json")
    with open(path, encoding="utf-8") as fp:
        return path, json.load(fp)


def select_sources(db, root):
    files = set()
    for entry in db:
        absolute = os.path.normpath(
            os.path.join(entry.get("directory", ""), entry["file"]))
        rel = os.path.relpath(absolute, root)
        if rel.startswith(SOURCE_PREFIXES) and rel.endswith(".cc"):
            files.add(absolute)
    return sorted(files)


def parse_diagnostics(output, root):
    """Aggregates clang-tidy output to {(relpath, check): count}. A
    diagnostic tagged with several checks [a,b] counts once per check."""
    findings = {}
    seen = set()  # (file, line, col, checks) — tidy repeats headers' diags
    for line in output.splitlines():
        match = DIAG_RE.match(line.strip())
        if not match:
            continue
        location = (match["file"], match["line"], match["col"],
                    match["checks"])
        if location in seen:
            continue
        seen.add(location)
        rel = os.path.relpath(match["file"], root)
        if rel.startswith(".."):
            continue  # system or third-party header
        for check in match["checks"].split(","):
            key = (rel, check)
            findings[key] = findings.get(key, 0) + 1
    return findings


def run_tidy(files, build_dir, binary, jobs):
    def one(path):
        proc = subprocess.run(
            [binary, "-p", build_dir, "--quiet", path],
            capture_output=True, text=True)
        return proc.stdout + "\n" + proc.stderr

    outputs = []
    with concurrent.futures.ThreadPoolExecutor(max_workers=jobs) as pool:
        for chunk in pool.map(one, files):
            outputs.append(chunk)
    return "\n".join(outputs)


def read_baseline(path):
    baseline = {}
    if not os.path.exists(path):
        return baseline
    with open(path, encoding="utf-8") as fp:
        for line in fp:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            rel, check, count = line.split("\t")
            baseline[(rel, check)] = int(count)
    return baseline


def write_baseline(path, findings):
    with open(path, "w", encoding="utf-8") as fp:
        fp.write("# clang-tidy ratchet baseline: file<TAB>check<TAB>count.\n"
                 "# Regenerate with scripts/run_clang_tidy.py "
                 "--update-baseline.\n")
        for (rel, check), count in sorted(findings.items()):
            fp.write(f"{rel}\t{check}\t{count}\n")


def diff_against_baseline(findings, baseline):
    """Findings that are new or grew relative to the baseline."""
    regressions = []
    for key, count in sorted(findings.items()):
        allowed = baseline.get(key, 0)
        if count > allowed:
            regressions.append((key[0], key[1], count, allowed))
    return regressions


def config_hash(compile_db_path, tidy_config_path):
    digest = hashlib.sha256()
    for path in (compile_db_path, tidy_config_path):
        with open(path, "rb") as fp:
            digest.update(fp.read())
        digest.update(b"\0")
    return digest.hexdigest()


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", default="build")
    parser.add_argument("--baseline",
                        default=os.path.join(os.path.dirname(
                            os.path.abspath(__file__)),
                            "clang_tidy_baseline.txt"))
    parser.add_argument("--clang-tidy", default="clang-tidy",
                        help="clang-tidy binary to invoke")
    parser.add_argument("--jobs", type=int, default=os.cpu_count() or 4)
    parser.add_argument("--cache", default=None,
                        help="JSON memo file keyed on compile_commands + "
                             ".clang-tidy hashes")
    parser.add_argument("--update-baseline", action="store_true")
    parser.add_argument("--self-test", action="store_true")
    args = parser.parse_args()

    if args.self_test:
        return self_test()

    root = repo_root()
    compile_db_path, db = load_compile_db(args.build_dir)
    key = config_hash(compile_db_path, os.path.join(root, ".clang-tidy"))

    findings = None
    if args.cache and os.path.exists(args.cache):
        with open(args.cache, encoding="utf-8") as fp:
            cached = json.load(fp)
        if cached.get("key") == key:
            findings = {(f, c): n for f, c, n in cached["findings"]}
            print(f"run_clang_tidy.py: cache hit ({args.cache})")

    if findings is None:
        files = select_sources(db, root)
        if not files:
            print("run_clang_tidy.py: no first-party sources in "
                  "compilation database", file=sys.stderr)
            return 2
        print(f"run_clang_tidy.py: tidying {len(files)} files with "
              f"{args.jobs} jobs")
        output = run_tidy(files, args.build_dir, args.clang_tidy, args.jobs)
        findings = parse_diagnostics(output, root)
        if args.cache:
            with open(args.cache, "w", encoding="utf-8") as fp:
                json.dump({"key": key,
                           "findings": [[f, c, n] for (f, c), n
                                        in sorted(findings.items())]}, fp)

    if args.update_baseline:
        write_baseline(args.baseline, findings)
        print(f"run_clang_tidy.py: baseline rewritten "
              f"({len(findings)} finding classes)")
        return 0

    baseline = read_baseline(args.baseline)
    regressions = diff_against_baseline(findings, baseline)
    fixed = [key for key in baseline if key not in findings]
    if fixed:
        print(f"run_clang_tidy.py: {len(fixed)} baseline finding class(es) "
              "no longer fire — consider --update-baseline to ratchet down")
    if regressions:
        print("NEW clang-tidy findings (not in baseline):")
        for rel, check, count, allowed in regressions:
            print(f"  {rel}\t{check}\t{count} (baseline {allowed})")
        return 1
    print(f"run_clang_tidy.py: no new findings "
          f"({len(findings)} existing, {len(baseline)} baselined)")
    return 0


# --------------------------- self test -----------------------------------

FAKE_OUTPUT = """\
/repo/src/core/engine.cc:10:5: warning: use nullptr [modernize-use-nullptr]
/repo/src/core/engine.cc:10:5: warning: use nullptr [modernize-use-nullptr]
/repo/src/core/engine.cc:22:9: warning: use nullptr [modernize-use-nullptr]
/repo/src/detect/detector.cc:7:1: warning: moved twice [bugprone-use-after-move]
/repo/src/detect/detector.cc:9:3: warning: x [performance-unnecessary-copy-initialization,bugprone-foo]
/usr/include/c++/12/vector:99:1: warning: system noise [bugprone-bar]
12 warnings generated.
Suppressed 11 warnings.
"""


def self_test():
    failures = []
    findings = parse_diagnostics(FAKE_OUTPUT, "/repo")
    expected = {
        ("src/core/engine.cc", "modernize-use-nullptr"): 2,
        ("src/detect/detector.cc", "bugprone-use-after-move"): 1,
        ("src/detect/detector.cc",
         "performance-unnecessary-copy-initialization"): 1,
        ("src/detect/detector.cc", "bugprone-foo"): 1,
    }
    if findings != expected:
        failures.append(f"parse: got {findings}")

    # Identical baseline → no regressions; missing entry and a grown count
    # → exactly those two regress.
    if diff_against_baseline(expected, dict(expected)):
        failures.append("diff: identical baseline reported regressions")
    shrunk = dict(expected)
    del shrunk[("src/detect/detector.cc", "bugprone-foo")]
    shrunk[("src/core/engine.cc", "modernize-use-nullptr")] = 1
    regressions = {(r[0], r[1]) for r
                   in diff_against_baseline(expected, shrunk)}
    if regressions != {("src/detect/detector.cc", "bugprone-foo"),
                       ("src/core/engine.cc", "modernize-use-nullptr")}:
        failures.append(f"diff: got {regressions}")

    # Baseline round-trip.
    import tempfile
    with tempfile.NamedTemporaryFile("w", suffix=".txt",
                                     delete=False) as tmp:
        tmp_path = tmp.name
    try:
        write_baseline(tmp_path, expected)
        if read_baseline(tmp_path) != expected:
            failures.append("baseline round-trip mismatch")
    finally:
        os.unlink(tmp_path)

    if failures:
        print("run_clang_tidy.py self-test FAILED:")
        for failure in failures:
            print("  " + failure)
        return 1
    print("run_clang_tidy.py self-test passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
