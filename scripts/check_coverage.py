#!/usr/bin/env python3
"""Gates line coverage of the recovery-critical directories.

Usage:
  check_coverage.py --build-dir BUILD [--baseline FILE] [--update]
                    [--margin PP] [--self-test]

Walks BUILD for .gcda note files produced by a --coverage build after the
test suite ran, shells out to `gcov --json-format --stdout` per
translation unit, and unions the per-line execution counts across TUs (a
line is covered when any TU covered it). Computes line coverage for each
gated directory (src/par, src/chase) and fails (exit 1) when a
directory's coverage drops below the recorded floor in the baseline
file. `--update` rewrites the baseline instead: measured coverage minus
`--margin` percentage points (default 3.0), floored, so routine compiler
and inlining jitter never trips the gate but a real regression — a new
untested branch in the executor or checkpoint path — does.

The gate exists because the fault-injection paths are exactly the code
that only runs when something goes wrong; without a floor, a refactor
can silently orphan the crash/drain/replay branches from the test suite.

Requires gcov >= 9 (JSON intermediate format). No third-party modules.
"""

import argparse
import collections
import json
import os
import subprocess
import sys

GATED_DIRS = ["src/par", "src/chase"]


def run_gcov(gcda, build_dir, gcov="gcov"):
    """Returns parsed gcov JSON documents for one .gcda file."""
    proc = subprocess.run(
        [gcov, "--json-format", "--stdout", gcda],
        cwd=build_dir, capture_output=True, text=True, check=False)
    if proc.returncode != 0:
        print(f"WARN gcov failed on {gcda}: {proc.stderr.strip()}")
        return []
    docs = []
    for line in proc.stdout.splitlines():
        line = line.strip()
        if not line.startswith("{"):
            continue
        try:
            docs.append(json.loads(line))
        except json.JSONDecodeError:
            continue
    return docs


def collect_line_hits(build_dir, gcov="gcov"):
    """Union of per-line hit counts across all TUs: {source: {line: hits}}."""
    gcdas = []
    for root, _dirs, files in os.walk(build_dir):
        gcdas.extend(os.path.abspath(os.path.join(root, f)) for f in files
                     if f.endswith(".gcda"))
    if not gcdas:
        print(f"FAIL no .gcda files under {build_dir}; build with "
              f"--coverage and run the tests first")
        return None
    hits = collections.defaultdict(dict)
    for gcda in sorted(gcdas):
        for doc in run_gcov(gcda, build_dir, gcov):
            for entry in doc.get("files", []):
                source = os.path.normpath(entry["file"])
                per_line = hits[source]
                for line in entry.get("lines", []):
                    number = line["line_number"]
                    per_line[number] = max(per_line.get(number, 0),
                                           line["count"])
    return hits


def directory_coverage(hits, gated=GATED_DIRS):
    """Per-directory (covered, total, percent) over the gated prefixes."""
    out = {}
    for gate in gated:
        covered = total = 0
        needle = gate.rstrip("/") + "/"
        for source, per_line in hits.items():
            # gcov paths may be absolute or build-relative; match on the
            # repo-relative infix.
            normalized = source.replace("\\", "/")
            if needle not in normalized and not normalized.startswith(
                    needle):
                continue
            total += len(per_line)
            covered += sum(1 for count in per_line.values() if count > 0)
        percent = 100.0 * covered / total if total else 0.0
        out[gate] = (covered, total, percent)
    return out


def check(coverage, baseline_path):
    try:
        with open(baseline_path, encoding="utf-8") as fh:
            baseline = json.load(fh)
    except OSError as err:
        print(f"FAIL unreadable baseline {baseline_path}: {err}")
        return False
    ok = True
    for gate, floor in sorted(baseline.items()):
        covered, total, percent = coverage.get(gate, (0, 0, 0.0))
        verdict = "OK  " if percent >= floor else "FAIL"
        print(f"{verdict} {gate}: {percent:.1f}% line coverage "
              f"({covered}/{total} lines), floor {floor:.1f}%")
        if percent < floor:
            ok = False
    return ok


def update(coverage, baseline_path, margin):
    baseline = {}
    for gate, (covered, total, percent) in sorted(coverage.items()):
        if total == 0:
            print(f"FAIL {gate}: no executable lines measured; refusing "
                  f"to record a 0% floor")
            return False
        baseline[gate] = max(0.0, float(int(percent - margin)))
        print(f"RECORD {gate}: measured {percent:.1f}% "
              f"({covered}/{total}), floor {baseline[gate]:.1f}%")
    with open(baseline_path, "w", encoding="utf-8") as fh:
        json.dump(baseline, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {baseline_path}")
    return True


def self_test():
    """Fixture check so a broken checker fails loudly, not vacuously."""
    hits = {
        "/repo/src/par/executor.cc": {1: 5, 2: 0, 3: 1, 4: 1},
        "src/par/fault.cc": {10: 1, 11: 1},
        "/repo/src/chase/chase.cc": {7: 0, 8: 0, 9: 3},
        "/repo/src/ml/library.cc": {1: 0},  # not gated
    }
    cov = directory_coverage(hits)
    assert cov["src/par"][:2] == (5, 6), cov["src/par"]
    assert abs(cov["src/par"][2] - 500 / 6) < 1e-9, cov["src/par"]
    assert abs(cov["src/chase"][2] - 100 / 3) < 1e-9, cov["src/chase"]
    # Union semantics: the same header line covered in one TU and missed
    # in another counts as covered.
    merged = collections.defaultdict(dict)
    for tu in ({"src/par/fault.h": {5: 0}}, {"src/par/fault.h": {5: 2}}):
        for source, per_line in tu.items():
            for number, count in per_line.items():
                merged[source][number] = max(
                    merged[source].get(number, 0), count)
    assert merged["src/par/fault.h"][5] == 2
    print("self-test OK")
    return True


def main(argv):
    parser = argparse.ArgumentParser()
    parser.add_argument("--build-dir", default="build")
    parser.add_argument("--baseline",
                        default="scripts/coverage_baseline.json")
    parser.add_argument("--update", action="store_true")
    parser.add_argument("--margin", type=float, default=3.0)
    parser.add_argument("--gcov", default=os.environ.get("GCOV", "gcov"))
    parser.add_argument("--self-test", action="store_true")
    args = parser.parse_args(argv[1:])

    if args.self_test:
        return 0 if self_test() else 1
    hits = collect_line_hits(args.build_dir, args.gcov)
    if hits is None:
        return 1
    coverage = directory_coverage(hits)
    if args.update:
        return 0 if update(coverage, args.baseline, args.margin) else 1
    return 0 if check(coverage, args.baseline) else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
