#!/usr/bin/env python3
"""Validates Prometheus text exposition format (the /metrics endpoint).

Usage:
    check_prometheus.py [--require-metric NAME]... FILE [FILE...]
    check_prometheus.py --self-test

Checks, per https://prometheus.io/docs/instrumenting/exposition_formats/:
  - every line is a sample, a # HELP/# TYPE comment, or blank;
  - metric and label names are well-formed; label values use only the
    \\\\ \\" \\n escapes; sample values parse as floats (+Inf/-Inf/NaN ok);
  - at most one TYPE per metric, declared before its first sample, with a
    known type; all samples of a family are consecutive;
  - histogram families have non-decreasing `le` bucket counts, a +Inf
    bucket, and _count equal to the +Inf bucket.

--require-metric NAME (repeatable) additionally fails unless a sample
with exactly that name appears. Reads stdin when FILE is '-'.
"""

import argparse
import math
import re
import sys

METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)"
    r"(?:\s+(?P<timestamp>-?\d+))?\s*$")
KNOWN_TYPES = {"counter", "gauge", "histogram", "summary", "untyped"}

# Suffixes that belong to the base family for grouping/TYPE purposes.
FAMILY_SUFFIXES = ("_bucket", "_sum", "_count")


def parse_labels(raw):
    """Parses the inside of {...}; returns a dict or raises ValueError."""
    labels = {}
    i, n = 0, len(raw)
    while i < n:
        eq = raw.find("=", i)
        if eq < 0:
            raise ValueError(f"missing '=' at ...{raw[i:]!r}")
        name = raw[i:eq]
        if not LABEL_NAME_RE.match(name):
            raise ValueError(f"bad label name {name!r}")
        i = eq + 1
        if i >= n or raw[i] != '"':
            raise ValueError(f"label value must be quoted at ...{raw[i:]!r}")
        i += 1
        value = []
        while i < n and raw[i] != '"':
            if raw[i] == "\\":
                if i + 1 >= n or raw[i + 1] not in ('\\', '"', 'n'):
                    raise ValueError(
                        f"bad escape at ...{raw[i:]!r} (only \\\\ \\\" \\n)")
                value.append({"\\": "\\", '"': '"', "n": "\n"}[raw[i + 1]])
                i += 2
            else:
                value.append(raw[i])
                i += 1
        if i >= n:
            raise ValueError("unterminated label value")
        i += 1  # closing quote
        labels[name] = "".join(value)
        if i < n:
            if raw[i] != ",":
                raise ValueError(f"expected ',' between labels at "
                                 f"...{raw[i:]!r}")
            i += 1
    return labels


def parse_value(raw):
    lowered = raw.lower()
    if lowered in ("+inf", "inf"):
        return math.inf
    if lowered == "-inf":
        return -math.inf
    if lowered == "nan":
        return math.nan
    return float(raw)  # raises ValueError on garbage


def family_of(name):
    for suffix in FAMILY_SUFFIXES:
        if name.endswith(suffix):
            return name[:-len(suffix)]
    return name


def validate(text, path="<input>", require_metrics=()):
    """Returns a list of error strings (empty = valid)."""
    errors = []
    types = {}          # family -> declared type
    seen_samples = set()  # families that already emitted a sample
    closed = set()      # families whose consecutive sample run ended
    current_family = None
    histogram_buckets = {}  # family -> list of (le, count)
    histogram_counts = {}   # family -> _count value
    sample_names = set()

    def err(lineno, message):
        errors.append(f"{path}:{lineno}: {message}")

    for lineno, line in enumerate(text.split("\n"), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 2 and parts[1] in ("HELP", "TYPE"):
                if len(parts) < 3 or not METRIC_NAME_RE.match(parts[2]):
                    err(lineno, f"bad {parts[1]} line: {line!r}")
                    continue
                if parts[1] == "TYPE":
                    name = parts[2]
                    kind = parts[3].strip() if len(parts) > 3 else ""
                    if kind not in KNOWN_TYPES:
                        err(lineno, f"unknown type {kind!r} for {name}")
                    if name in types:
                        err(lineno, f"duplicate TYPE for {name}")
                    if name in seen_samples:
                        err(lineno, f"TYPE for {name} after its samples")
                    types[name] = kind
            # Other comments are legal and ignored.
            continue

        match = SAMPLE_RE.match(line)
        if match is None:
            err(lineno, f"unparsable sample line: {line!r}")
            continue
        name = match.group("name")
        sample_names.add(name)
        labels_raw = match.group("labels")
        labels = {}
        if labels_raw is not None:
            try:
                labels = parse_labels(labels_raw)
            except ValueError as exc:
                err(lineno, f"{name}: {exc}")
                continue
        try:
            value = parse_value(match.group("value"))
        except ValueError:
            err(lineno, f"{name}: bad value {match.group('value')!r}")
            continue

        family = family_of(name)
        if family != current_family:
            if family in closed:
                err(lineno, f"samples of {family} are not consecutive")
            if current_family is not None:
                closed.add(current_family)
            current_family = family
        seen_samples.add(family)
        seen_samples.add(name)

        if types.get(family) == "histogram" and name == family + "_bucket":
            if "le" not in labels:
                err(lineno, f"{name}: histogram bucket without le label")
            else:
                try:
                    le = parse_value(labels["le"])
                    histogram_buckets.setdefault(family, []).append(
                        (le, value))
                except ValueError:
                    err(lineno, f"{name}: bad le {labels['le']!r}")
        if types.get(family) == "histogram" and name == family + "_count":
            histogram_counts[family] = value

    for family, buckets in histogram_buckets.items():
        counts = [count for _, count in buckets]
        if counts != sorted(counts):
            errors.append(f"{path}: histogram {family} bucket counts "
                          f"decrease: {counts}")
        if not buckets or not math.isinf(buckets[-1][0]):
            errors.append(f"{path}: histogram {family} lacks a +Inf bucket")
        elif family in histogram_counts and \
                histogram_counts[family] != buckets[-1][1]:
            errors.append(f"{path}: histogram {family} _count="
                          f"{histogram_counts[family]} != +Inf bucket="
                          f"{buckets[-1][1]}")

    for required in require_metrics:
        if required not in sample_names:
            errors.append(f"{path}: required metric {required!r} absent")
    return errors


# --------------------------- self test -----------------------------------

GOOD = """\
# HELP rock_x_total Counts x events; backslash \\\\ and "quotes" are ok
# TYPE rock_x_total counter
rock_x_total 5
# TYPE rock_q gauge
rock_q -3
# TYPE rock_lat_seconds histogram
rock_lat_seconds_bucket{le="0.1"} 1
rock_lat_seconds_bucket{le="1"} 3
rock_lat_seconds_bucket{le="+Inf"} 4
rock_lat_seconds_sum 1.25
rock_lat_seconds_count 4
# TYPE rock_span_seconds summary
rock_span_seconds{name="detect \\"fast\\" pass",quantile="0.5"} 0.01
rock_span_seconds{name="a\\\\b\\nc",quantile="0.99"} 0.05
rock_span_seconds_sum{name="detect \\"fast\\" pass"} 0.5
rock_span_seconds_count{name="detect \\"fast\\" pass"} 50
"""

SELF_TEST_CASES = [
    # (description, text, expect_valid, require)
    ("well-formed exposition", GOOD, True, ()),
    ("require present metric", GOOD, True, ("rock_x_total",)),
    ("require absent metric", GOOD, False, ("rock_missing",)),
    ("bad metric name", "1bad_name 5\n", False, ()),
    ("bad value", "rock_x oops\n", False, ()),
    ("inf value ok", "rock_x +Inf\n", True, ()),
    ("bad escape in label",
     'rock_x{name="a\\qb"} 1\n', False, ()),
    ("unquoted label value", "rock_x{name=zzz} 1\n", False, ()),
    ("unterminated label value", 'rock_x{name="zzz} 1\n', False, ()),
    ("unknown type", "# TYPE rock_x widget\nrock_x 1\n", False, ()),
    ("duplicate type",
     "# TYPE rock_x counter\n# TYPE rock_x counter\nrock_x 1\n", False, ()),
    ("type after samples",
     "rock_x 1\n# TYPE rock_x counter\n", False, ()),
    ("non-consecutive family",
     "rock_a 1\nrock_b 2\nrock_a 3\n", False, ()),
    ("histogram bucket without le",
     "# TYPE rock_h histogram\nrock_h_bucket 1\n", False, ()),
    ("histogram decreasing buckets",
     "# TYPE rock_h histogram\n"
     'rock_h_bucket{le="1"} 5\nrock_h_bucket{le="+Inf"} 3\n', False, ()),
    ("histogram missing +Inf",
     "# TYPE rock_h histogram\n"
     'rock_h_bucket{le="1"} 5\n', False, ()),
    ("histogram count mismatch",
     "# TYPE rock_h histogram\n"
     'rock_h_bucket{le="+Inf"} 3\nrock_h_sum 1\nrock_h_count 4\n',
     False, ()),
    ("timestamped sample", "rock_x 5 1700000000000\n", True, ()),
]


def self_test():
    failures = []
    for description, text, expect_valid, require in SELF_TEST_CASES:
        errors = validate(text, path=description, require_metrics=require)
        if expect_valid and errors:
            failures.append(f"{description!r}: expected valid, got "
                            f"{errors[:2]}")
        elif not expect_valid and not errors:
            failures.append(f"{description!r}: expected errors, got none")
    if failures:
        print("check_prometheus.py self-test FAILED:")
        for failure in failures:
            print("  " + failure)
        return 1
    print(f"check_prometheus.py self-test passed "
          f"({len(SELF_TEST_CASES)} fixtures)")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("files", nargs="*", help="exposition files "
                        "('-' = stdin)")
    parser.add_argument("--require-metric", action="append", default=[],
                        metavar="NAME", help="fail unless a sample with "
                        "exactly this name appears (repeatable)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the built-in fixture suite and exit")
    args = parser.parse_args()

    if args.self_test:
        return self_test()
    if not args.files:
        parser.error("no input files (or --self-test)")

    all_errors = []
    for path in args.files:
        if path == "-":
            text = sys.stdin.read()
        else:
            try:
                with open(path, encoding="utf-8") as fh:
                    text = fh.read()
            except OSError as exc:
                all_errors.append(f"{path}: unreadable: {exc}")
                continue
        errors = validate(text, path=path,
                          require_metrics=args.require_metric)
        if errors:
            all_errors.extend(errors)
        else:
            lines = sum(1 for l in text.split("\n")
                        if l.strip() and not l.startswith("#"))
            print(f"OK   {path}: {lines} samples")
    for error in all_errors:
        print("FAIL " + error)
    return 1 if all_errors else 0


if __name__ == "__main__":
    sys.exit(main())
