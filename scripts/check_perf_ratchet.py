#!/usr/bin/env python3
"""Gates the perf-critical bench phases against a checked-in baseline.

Usage:
  check_perf_ratchet.py --bench-dir DIR [--baseline FILE]
                        [--tolerance X] [--speedup-margin F]
                        [--update-baseline] [--self-test]

Reads the BENCH_<name>.json files that the bench binaries emit (see
bench/bench_telemetry.h) and applies three kinds of teeth:

  ratios    Hardware-robust invariants between two phases of the same
            bench run — e.g. the batched ML-predicate phase must stay at
            least `min` times faster than its scalar twin. Both sides
            ran on the same machine moments apart, so these gate tightly
            on any hardware and are the ratchet's primary teeth.
  phases    Absolute per-phase ceilings: measured <= baseline *
            tolerance. The default tolerance (2.5x) is deliberately
            loose — CI runners vary — so this only catches
            order-of-magnitude regressions (an accidentally quadratic
            loop, a lost index), never scheduler jitter.
  speedups  Floors on scalar results (the fig-4 measured_speedup
            numbers): measured >= floor. Floors are recorded with a
            margin off the observed value for the same reason.

A phase or result named in the baseline but absent from the JSON fails:
silently dropping a bench from the build must not read as "no
regression". `--update-baseline` rewrites the measured phase times and
re-derives the speedup floors (measured * (1 - speedup-margin)) while
preserving the ratio policy; run it on the CI reference hardware and
commit the result when a deliberate perf change moves the floors.

No third-party modules.
"""

import argparse
import json
import os
import sys

DEFAULT_BASELINE = "scripts/perf_baseline.json"

# Ratio policy written into a fresh baseline by --update-baseline. Kept in
# the baseline file (not here) afterwards so a deliberate policy change is
# a reviewed diff of scripts/perf_baseline.json.
DEFAULT_RATIOS = [
    {
        "name": "batched_ml_predicate_vs_scalar",
        "bench": "micro_perf",
        "numerator": "BM_MlPredicateScalar",
        "denominator": "BM_MlPredicateBatched",
        "min": 2.0,
    },
    {
        "name": "batched_logistic_vs_scalar",
        "bench": "micro_perf",
        "numerator": "BM_LogisticPairScalar",
        "denominator": "BM_LogisticPairBatched",
        "min": 2.0,
    },
]

# Benches whose phases are ratcheted; "total" moves with machine load and
# bench count, so it is excluded from the recorded ceilings.
PHASE_BENCHES = ["micro_perf"]
SKIPPED_PHASES = {"total"}

# (bench, result key) pairs whose floors --update-baseline records.
SPEEDUP_KEYS = [
    ("fig4_scale_ed", "simulated_speedup_n4_to_n20"),
    ("fig4_scale_ed", "threaded_speedup_w1_to_w4"),
    ("fig4_scale_ec", "simulated_speedup_n4_to_n20"),
]


def load_bench(bench_dir, name):
    """Parsed BENCH_<name>.json, or None with a message when unreadable."""
    path = os.path.join(bench_dir, f"BENCH_{name}.json")
    try:
        with open(path, encoding="utf-8") as fh:
            return json.load(fh)
    except (OSError, json.JSONDecodeError) as err:
        print(f"FAIL unreadable bench output {path}: {err}")
        return None


def check_ratios(benches, ratios):
    ok = True
    for ratio in ratios:
        doc = benches.get(ratio["bench"])
        if doc is None:
            ok = False
            continue
        phases = doc.get("phases", {})
        num = phases.get(ratio["numerator"])
        den = phases.get(ratio["denominator"])
        if not num or not den:
            print(f"FAIL ratio {ratio['name']}: missing phase "
                  f"{ratio['numerator']!r} or {ratio['denominator']!r} in "
                  f"BENCH_{ratio['bench']}.json")
            ok = False
            continue
        measured = num / den
        verdict = "OK  " if measured >= ratio["min"] else "FAIL"
        print(f"{verdict} ratio {ratio['name']}: {measured:.2f}x "
              f"(floor {ratio['min']:.2f}x)")
        if measured < ratio["min"]:
            ok = False
    return ok


def check_phases(benches, baseline_phases, tolerance):
    ok = True
    for bench, ceilings in sorted(baseline_phases.items()):
        doc = benches.get(bench)
        if doc is None:
            ok = False
            continue
        phases = doc.get("phases", {})
        for phase, base in sorted(ceilings.items()):
            measured = phases.get(phase)
            if measured is None:
                print(f"FAIL phase {bench}/{phase}: absent from bench "
                      f"output (baselined phases may not be dropped)")
                ok = False
                continue
            limit = base * tolerance
            verdict = "OK  " if measured <= limit else "FAIL"
            print(f"{verdict} phase {bench}/{phase}: {measured:.3e}s "
                  f"(baseline {base:.3e}s, limit {limit:.3e}s)")
            if measured > limit:
                ok = False
    return ok


def check_speedups(benches, floors):
    ok = True
    for bench, keys in sorted(floors.items()):
        doc = benches.get(bench)
        if doc is None:
            ok = False
            continue
        results = doc.get("results", {})
        for key, floor in sorted(keys.items()):
            measured = results.get(key)
            if measured is None:
                print(f"FAIL speedup {bench}/{key}: absent from bench "
                      f"output")
                ok = False
                continue
            verdict = "OK  " if measured >= floor else "FAIL"
            print(f"{verdict} speedup {bench}/{key}: {measured:.2f} "
                  f"(floor {floor:.2f})")
            if measured < floor:
                ok = False
    return ok


def check(benches, baseline, tolerance_override=None):
    tolerance = (tolerance_override if tolerance_override is not None
                 else baseline.get("tolerance", 2.5))
    ok = check_ratios(benches, baseline.get("ratios", []))
    ok = check_phases(benches, baseline.get("phases", {}), tolerance) and ok
    ok = check_speedups(benches, baseline.get("speedups", {})) and ok
    return ok


def update(benches, baseline_path, old_baseline, tolerance,
           speedup_margin):
    """Rewrites measured phases/speedup floors, keeping ratio policy."""
    baseline = {
        "tolerance": (tolerance if tolerance is not None
                      else old_baseline.get("tolerance") or 2.5),
        "ratios": old_baseline.get("ratios") or DEFAULT_RATIOS,
        "phases": {},
        "speedups": {},
    }
    for bench in PHASE_BENCHES:
        doc = benches.get(bench)
        if doc is None:
            return False
        phases = {name: seconds
                  for name, seconds in doc.get("phases", {}).items()
                  if name not in SKIPPED_PHASES and seconds > 0}
        if not phases:
            print(f"FAIL {bench}: no positive phase times; refusing to "
                  f"record an empty baseline")
            return False
        baseline["phases"][bench] = phases
        print(f"RECORD {bench}: {len(phases)} phase ceilings")
    for bench, key in SPEEDUP_KEYS:
        doc = benches.get(bench)
        if doc is None:
            return False
        measured = doc.get("results", {}).get(key)
        if measured is None:
            print(f"FAIL {bench}/{key}: result missing; cannot record a "
                  f"floor")
            return False
        floor = round(measured * (1.0 - speedup_margin), 3)
        baseline["speedups"].setdefault(bench, {})[key] = floor
        print(f"RECORD speedup {bench}/{key}: measured {measured:.2f}, "
              f"floor {floor:.2f}")
    with open(baseline_path, "w", encoding="utf-8") as fh:
        json.dump(baseline, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {baseline_path}")
    return True


def self_test():
    """Fixture check so a broken ratchet fails loudly, not vacuously."""
    baseline = {
        "tolerance": 2.0,
        "ratios": [{"name": "batched", "bench": "micro_perf",
                    "numerator": "scalar", "denominator": "batched",
                    "min": 2.0}],
        "phases": {"micro_perf": {"scalar": 1e-3, "batched": 2.5e-4}},
        "speedups": {"fig4_scale_ed": {"measured_speedup": 2.0}},
    }
    healthy = {"micro_perf": {
        "phases": {"scalar": 1.1e-3, "batched": 2.6e-4},
        "results": {}},
        "fig4_scale_ed": {"phases": {}, "results":
                          {"measured_speedup": 3.1}}}
    assert check(healthy, baseline), "healthy run must pass"

    # A batched-path regression flips the ratio below its floor even
    # though both phases stay under their absolute ceilings.
    regressed_ratio = json.loads(json.dumps(healthy))
    regressed_ratio["micro_perf"]["phases"]["batched"] = 7e-4
    assert not check(regressed_ratio, baseline), \
        "ratio below floor must fail"

    # An absolute blow-up past tolerance fails even with the ratio intact.
    regressed_abs = json.loads(json.dumps(healthy))
    regressed_abs["micro_perf"]["phases"]["scalar"] = 9e-3
    regressed_abs["micro_perf"]["phases"]["batched"] = 2e-3
    assert not check(regressed_abs, baseline), \
        "phase past tolerance must fail"
    # ... but passes when the caller loosens the tolerance explicitly.
    assert check(regressed_abs, baseline, tolerance_override=20.0)

    # Dropping a baselined phase from the bench output must fail.
    dropped = json.loads(json.dumps(healthy))
    del dropped["micro_perf"]["phases"]["batched"]
    assert not check(dropped, baseline), "dropped phase must fail"

    # A speedup under its floor must fail.
    slow = json.loads(json.dumps(healthy))
    slow["fig4_scale_ed"]["results"]["measured_speedup"] = 1.2
    assert not check(slow, baseline), "speedup under floor must fail"

    # Missing bench file: load_bench returns None and check fails.
    assert not check({"fig4_scale_ed": healthy["fig4_scale_ed"]},
                     baseline), "missing bench doc must fail"
    print("self-test OK")
    return True


def main(argv):
    parser = argparse.ArgumentParser()
    parser.add_argument("--bench-dir", default=".",
                        help="directory holding the BENCH_*.json files")
    parser.add_argument("--baseline", default=DEFAULT_BASELINE)
    parser.add_argument("--tolerance", type=float, default=None,
                        help="override the baseline's phase tolerance "
                             "multiplier")
    parser.add_argument("--speedup-margin", type=float, default=0.4,
                        help="fraction shaved off measured speedups when "
                             "recording floors with --update-baseline")
    parser.add_argument("--update-baseline", action="store_true")
    parser.add_argument("--self-test", action="store_true")
    args = parser.parse_args(argv[1:])

    if args.self_test:
        return 0 if self_test() else 1

    old_baseline = {}
    if not args.update_baseline or os.path.exists(args.baseline):
        try:
            with open(args.baseline, encoding="utf-8") as fh:
                old_baseline = json.load(fh)
        except (OSError, json.JSONDecodeError) as err:
            if not args.update_baseline:
                print(f"FAIL unreadable baseline {args.baseline}: {err}")
                return 1

    names = set(PHASE_BENCHES)
    names.update(bench for bench, _key in SPEEDUP_KEYS)
    names.update(r["bench"] for r in old_baseline.get("ratios", []))
    names.update(old_baseline.get("phases", {}))
    names.update(old_baseline.get("speedups", {}))
    benches = {name: load_bench(args.bench_dir, name) for name in
               sorted(names)}

    if args.update_baseline:
        return 0 if update(benches, args.baseline, old_baseline,
                           args.tolerance, args.speedup_margin) else 1
    return 0 if check(benches, old_baseline, args.tolerance) else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
