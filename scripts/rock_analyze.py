#!/usr/bin/env python3
"""rock-analyze: semantic static analysis for Rock's determinism and
concurrency invariants.

Five AST-level checks over the translation units in compile_commands.json
(scope: src/), each with an annotation escape hatch and a ratchet baseline
(scripts/rock_analyze_baseline.txt, same format and discipline as the
clang-tidy ratchet):

  nondeterministic-iteration
      A loop over std::unordered_map/std::unordered_set whose body reaches
      an order-sensitive sink — a FixStore mutator, provenance capture,
      JSON/Prometheus export, or an append to a sequence declared outside
      the loop — makes iteration order observable in results. Drain
      through a sorted copy, or annotate the loop
      `// ROCK_ANALYZE(ordered-ok: <reason>)`.
      Commutative drains (counter +=, map/set inserts, min/max) are not
      flagged.

  guarded-field
      A class that owns a rock::common::Mutex/SharedMutex must annotate
      every mutable field with ROCK_GUARDED_BY / ROCK_PT_GUARDED_BY or
      carry `// ROCK_ANALYZE(unguarded-ok: <reason>)` — Clang's thread
      safety analysis silently skips unannotated fields, so an annotation
      gap is an unchecked invariant, not a checked one. Raw std:: mutex
      and lock types outside src/common/ are findings of this check too
      (they carry no capability at all); this subsumes the old
      lint_rock.py raw-mutex rule.

  lock-order
      The static lock-acquisition graph (nested MutexLock / ReaderLock /
      WriterLock scopes) must stay acyclic and inside the checked-in edge
      list scripts/lock_order.txt. A nested acquisition whose (class,
      field) pair is not declared there is a finding: new lock-order
      edges are reviewed in the PR that introduces them, not discovered
      in a deadlock. Same-identity nesting needs
      `// ROCK_ANALYZE(lock-order-ok: <reason>)`.

  signal-safety
      The static call graph rooted at SigprofHandler may reach only an
      async-signal-safe allowlist (atomics, backtrace(3) — primed outside
      signal context — and raw syscalls). Any other call is a finding;
      so is any sigaction/timer_*/setitimer token outside
      src/obs/profile.cc (subsuming the old lint_rock.py raw-signal
      rule). Locally-audited callees can be annotated
      `// ROCK_ANALYZE(as-safe: <reason>)` at the call site.

  span-coverage
      Public core::Rock entry points must open a ScopedSpan
      (ROCK_OBS_SPAN) so every externally visible operation is
      attributable in traces and latency percentiles. Trivial inline
      accessors (single return statement) are exempt; anything else needs
      a span or `// ROCK_ANALYZE(no-span-ok: <reason>)`.

Frontends. The analyzer builds one semantic model per file and runs every
check over it. Two frontends produce that model:

  * textual — a built-in C++ tokenizer + structural parser (classes,
    fields, annotations, function bodies, local/param declarations, lock
    scopes, range-for loops) with name-resolution through a global index.
    Self-contained; what local ctest runs.
  * cindex — libclang (clang.cindex) parses each TU with its real compile
    command and overlays canonical types onto the same model, seeing
    through typedefs/auto where the textual frontend cannot. Used by the
    semantic-analysis CI job (pinned libclang wheel).

`--backend auto` (default) uses cindex when importable, textual otherwise.

Usage:
    scripts/rock_analyze.py --build-dir build                # tree mode
    scripts/rock_analyze.py --build-dir build --update-baseline
    scripts/rock_analyze.py --files f.cc g.h --expect guarded-field=2
    scripts/rock_analyze.py --self-test
"""

import argparse
import collections
import hashlib
import json
import os
import re
import sys

CHECKS = (
    "nondeterministic-iteration",
    "guarded-field",
    "lock-order",
    "signal-safety",
    "span-coverage",
)

# ---------------------------------------------------------------------------
# Configuration
# ---------------------------------------------------------------------------

# Order-sensitive sinks for nondeterministic-iteration: calling any of
# these from a loop over an unordered container makes the container's
# iteration order part of the result.
SINK_CALLS = {
    # chase::FixStore mutators (apply-phase, provenance-carrying).
    "RegisterTuple", "AddGroundTruthTuple", "AddGroundTruthValue",
    "AddGroundTruthOrder", "MergeEids", "SetValue", "ReplaceValue",
    "AddTemporal",
    # Provenance capture.
    "CaptureWitness", "LinkMerge",
}
# Order-sensitive member calls (emission APIs): obs::JsonWriter keys /
# nesting, and sequence appends handled separately below.
SINK_MEMBER_CALLS = {"Key", "BeginObject", "BeginArray"}
# Appending to a sequence declared outside the loop records iteration
# order into it.
APPEND_METHODS = {"push_back", "emplace_back", "push_front", "emplace_front",
                  "append"}

# Mutex-owning field types (suffix match on the normalized type text).
MUTEX_TYPE_SUFFIXES = ("::Mutex", "::SharedMutex")
MUTEX_TYPE_EXACT = {"Mutex", "SharedMutex"}
# Field types that never need ROCK_GUARDED_BY: capabilities themselves,
# atomics (their own synchronization), condition variables (waited on
# under a lock the analysis sees separately).
GUARD_EXEMPT_TYPE_TOKENS = ("Mutex", "SharedMutex", "ThreadRole", "atomic",
                            "condition_variable", "once_flag")
# Raw standard lock/mutex vocabulary that defeats the thread-safety
# analysis (subsumes lint_rock.py's raw-mutex rule).
RAW_MUTEX_RE = re.compile(
    r"std::(mutex|shared_mutex|recursive_mutex|timed_mutex|"
    r"lock_guard|unique_lock|scoped_lock|shared_lock)\b")

# RAII lock types establishing lock-order edges.
LOCK_RAII = {"MutexLock": "exclusive", "WriterLock": "exclusive",
             "ReaderLock": "shared"}

# Signal-handler roots for the signal-safety call-graph walk.
SIGNAL_ROOTS = ("SigprofHandler",)
# Async-signal-safe callees: std::atomic members, raw syscalls, and
# backtrace(3), whose lazy unwinder initialization CpuProfiler::Start
# forces outside signal context before arming any timer.
AS_SAFE_CALLS = {
    "load", "store", "exchange", "fetch_add", "fetch_sub", "fetch_or",
    "fetch_and", "compare_exchange_weak", "compare_exchange_strong",
    "backtrace", "syscall", "sigemptyset", "sigfillset", "sigaddset",
    "_exit", "write", "read",
}
# Signal/timer management calls confined to one audited seam.
SIGNAL_SEAM_FILE = "src/obs/profile.cc"
RAW_SIGNAL_RE = re.compile(
    r"(?<![A-Za-z0-9_:.>])(?:::\s*)?"
    r"(?:sigaction|timer_create|timer_settime|timer_delete|setitimer)\s*\(")

# Public entry-point classes for span-coverage: qualified class name.
ENTRY_POINT_CLASSES = ("rock::core::Rock",)
SPAN_TOKENS = {"ROCK_OBS_SPAN", "ROCK_OBS_SPAN_FLOW", "ScopedSpan"}

UNORDERED_CONTAINERS = {"unordered_map", "unordered_set", "unordered_multimap",
                        "unordered_multiset"}
SEQUENCE_CONTAINERS = {"vector", "deque", "array", "list", "span",
                       "initializer_list"}
ORDERED_ASSOC = {"map", "set", "multimap", "multiset"}

ANNOT_RE = re.compile(r"ROCK_ANALYZE\(\s*([a-z-]+)\s*:\s*([^)]+)\)")

TYPE_QUALIFIERS = {"const", "constexpr", "static", "mutable", "thread_local",
                   "inline", "explicit", "volatile", "extern", "virtual",
                   "friend", "typename", "register"}
BUILTIN_TYPE_TOKENS = {"unsigned", "signed", "long", "short", "int", "char",
                       "double", "float", "bool", "void", "auto", "wchar_t"}
CONTROL_KEYWORDS = {"if", "for", "while", "switch", "return", "sizeof",
                    "alignof", "catch", "do", "else", "case", "default",
                    "new", "delete", "throw", "goto", "co_await", "co_return",
                    "assert", "decltype", "noexcept", "defined"}

Finding = collections.namedtuple("Finding", "path line check message")
Token = collections.namedtuple("Token", "text line")


# ---------------------------------------------------------------------------
# Lexing
# ---------------------------------------------------------------------------

def strip_comments_and_strings(text):
    """Blanks comments, string/char literals and preprocessor directives,
    preserving line structure."""
    out = []
    i, n = 0, len(text)
    line_start = True
    while i < n:
        c = text[i]
        if line_start and c == "#":
            # Preprocessor directive (with continuations).
            j = i
            while j < n:
                k = text.find("\n", j)
                if k < 0:
                    j = n
                    break
                if text[k - 1] == "\\":
                    j = k + 1
                    continue
                j = k
                break
            out.append("".join(ch if ch == "\n" else " "
                               for ch in text[i:j]))
            i = j
            continue
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            i = n if j < 0 else j
            continue
        if c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            end = n if j < 0 else j + 2
            out.append("".join(ch if ch == "\n" else " "
                               for ch in text[i:end]))
            i = end
            continue
        if c in "\"'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            out.append(quote + " " * (min(j, n - 1) - i - 1) + quote)
            i = min(j + 1, n)
            line_start = False
            continue
        out.append(c)
        if c == "\n":
            line_start = True
        elif not c.isspace():
            line_start = False
        i += 1
    return "".join(out)


TOKEN_RE = re.compile(
    r"[A-Za-z_][A-Za-z0-9_]*|\d[\w.]*|::|->\*?|\+=|-=|\*=|/=|==|!=|<=|>=|"
    r"&&|\|\||\+\+|--|<<=?|[{}()\[\];:,<>=&|*+\-/.!?~^%\"']")


def tokenize(text):
    """Tokens over comment/string-stripped text, each with its 1-based
    line."""
    stripped = strip_comments_and_strings(text)
    tokens = []
    line = 1
    pos = 0
    for match in TOKEN_RE.finditer(stripped):
        line += stripped.count("\n", pos, match.start())
        pos = match.start()
        tokens.append(Token(match.group(), line))
    return tokens


def match_braces(tokens):
    """brace_match[i] = index of the `}` closing the `{` at i (and the
    reverse); unbalanced braces map to len(tokens)."""
    match = {}
    stack = []
    for i, tok in enumerate(tokens):
        if tok.text == "{":
            stack.append(i)
        elif tok.text == "}":
            if stack:
                j = stack.pop()
                match[j] = i
                match[i] = j
    for i in stack:
        match[i] = len(tokens)
    return match


def skip_template_args(tokens, i):
    """tokens[i] == '<': returns index one past the matching '>'.
    Conservative: bails (returns i) when the contents look like an
    expression rather than a type list."""
    depth = 0
    j = i
    while j < len(tokens):
        t = tokens[j].text
        if t == "<":
            depth += 1
        elif t == ">":
            depth -= 1
            if depth == 0:
                return j + 1
        elif t in (";", "{", "}") or depth == 0:
            return i
        j += 1
    return i


# ---------------------------------------------------------------------------
# Semantic model
# ---------------------------------------------------------------------------

class FieldModel:
    def __init__(self, name, type_text, line, annotations, is_static,
                 is_const, is_mutable):
        self.name = name
        self.type_text = type_text
        self.line = line
        self.annotations = annotations
        self.is_static = is_static
        self.is_const = is_const
        self.is_mutable = is_mutable


class MethodModel:
    def __init__(self, name, line, access, is_const, body_range):
        self.name = name
        self.line = line
        self.access = access
        self.is_const = is_const
        self.body_range = body_range  # (open, close) token indices or None


class ClassModel:
    def __init__(self, name, qualified, line, kind):
        self.name = name
        self.qualified = qualified
        self.line = line
        self.kind = kind
        self.fields = []
        self.methods = []

    def field(self, name):
        for f in self.fields:
            if f.name == name:
                return f
        return None


class FunctionModel:
    def __init__(self, name, qualifier, namespace, line, body_range,
                 param_range):
        self.name = name
        self.qualifier = qualifier  # 'Rock' for Rock::Method, else ''
        self.namespace = namespace
        self.line = line
        self.body_range = body_range
        self.param_range = param_range


class FileModel:
    def __init__(self, path, text):
        self.path = path
        self.raw_lines = text.split("\n")
        self.tokens = tokenize(text)
        self.brace = match_braces(self.tokens)
        self.classes = []
        self.functions = []
        self.globals = {}  # name -> type_text (namespace-scope variables)

    def annotation(self, line, tag):
        """Reason text for `ROCK_ANALYZE(tag: reason)` on `line` or the
        two lines above it, else None."""
        for l in range(line, max(0, line - 3), -1):
            if 0 < l <= len(self.raw_lines):
                for found_tag, reason in ANNOT_RE.findall(
                        self.raw_lines[l - 1]):
                    if found_tag == tag and reason.strip():
                        return reason.strip()
        return None


class Index:
    """Global, cross-file model: class lookup + function lookup."""

    def __init__(self, files, overlay=None):
        self.files = files
        self.overlay = overlay
        self.classes = {}      # short name -> ClassModel (first wins)
        self.classes_q = {}    # qualified name -> ClassModel
        self.functions = collections.defaultdict(list)  # name -> [(file, fn)]
        for fm in files:
            for cm in fm.classes:
                self.classes.setdefault(cm.name, cm)
                self.classes_q.setdefault(cm.qualified, cm)
            for fn in fm.functions:
                self.functions[fn.name].append((fm, fn))

    def class_for_type(self, type_text):
        """ClassModel for a type like 'std::vector<WorkerQueue>'s element
        or 'FaultState&' — matches on the last :: component before any
        template args."""
        if type_text is None:
            return None
        base = type_text.split("<", 1)[0].rstrip("&* ")
        short = base.rsplit("::", 1)[-1].strip()
        return self.classes_q.get(base) or self.classes.get(short)


# ---------------------------------------------------------------------------
# Structural parsing (textual frontend)
# ---------------------------------------------------------------------------

def parse_file(path, text):
    fm = FileModel(path, text)
    _parse_region(fm, 0, len(fm.tokens), [], None)
    return fm


def _join_type(tokens):
    out = []
    for t in tokens:
        if out and (t == "::" or out[-1].endswith("::") or t in (">", "<", ",",
                                                                 "*", "&")):
            if t in (">", ","):
                out[-1] += t
            elif t in ("*", "&"):
                out.append(t)
            elif t == "<":
                out[-1] += t
            else:
                out[-1] += t
        else:
            out.append(t)
    return "".join(out) if len(out) == 1 else " ".join(out).replace(" <", "<")


def _parse_type(tokens, i):
    """Parses a type at tokens[i]; returns (type_text, next_index) or
    (None, i). Handles qualifiers, ::-qualified names, template args,
    builtin multi-token types, trailing cv/ref/ptr."""
    start = i
    n = len(tokens)
    while i < n and tokens[i].text in TYPE_QUALIFIERS:
        i += 1
    type_tokens = []
    if i < n and tokens[i].text in BUILTIN_TYPE_TOKENS:
        while i < n and tokens[i].text in BUILTIN_TYPE_TOKENS:
            type_tokens.append(tokens[i].text)
            i += 1
    else:
        if i < n and tokens[i].text == "::":
            i += 1
        if i >= n or not re.match(r"[A-Za-z_]", tokens[i].text):
            return None, start
        if tokens[i].text in CONTROL_KEYWORDS:
            return None, start
        type_tokens.append(tokens[i].text)
        i += 1
        while i < n:
            if tokens[i].text == "::" and i + 1 < n and re.match(
                    r"[A-Za-z_]", tokens[i + 1].text):
                type_tokens.append("::")
                type_tokens.append(tokens[i + 1].text)
                i += 2
            elif tokens[i].text == "<":
                j = skip_template_args(tokens, i)
                if j == i:
                    break
                type_tokens.extend(t.text for t in tokens[i:j])
                i = j
            else:
                break
    while i < n and tokens[i].text in ("*", "&", "&&", "const"):
        type_tokens.append(tokens[i].text)
        i += 1
    if not type_tokens:
        return None, start
    return "".join(type_tokens), i


def _parse_region(fm, start, end, namespaces, klass, access="public"):
    """Parses a namespace/file region: namespaces, classes, functions,
    namespace-scope variables. When `klass` is a ClassModel, parses its
    body: fields, methods, access specifiers."""
    tokens = fm.tokens
    i = start
    while i < end:
        t = tokens[i].text
        if t == "namespace":
            j = i + 1
            parts = []
            while j < end and tokens[j].text not in ("{", ";", "="):
                if re.match(r"[A-Za-z_]", tokens[j].text):
                    parts.append(tokens[j].text)
                j += 1
            if j < end and tokens[j].text == "{":
                close = fm.brace.get(j, end)
                _parse_region(fm, j + 1, close, namespaces + parts, None)
                i = close + 1
            else:
                i = j + 1
            continue
        if t == "template":
            i += 1
            if i < end and tokens[i].text == "<":
                i = skip_template_args(tokens, i)
            continue
        if t in ("class", "struct") and not (
                i > start and tokens[i - 1].text == "enum"):
            j = i + 1
            # Skip attribute-ish macros: class ROCK_CAPABILITY("x") Name {
            name = None
            while j < end and tokens[j].text not in ("{", ";", ":"):
                if re.match(r"[A-Za-z_]", tokens[j].text):
                    if j + 1 < end and tokens[j + 1].text == "(":
                        close_p = _match_paren(tokens, j + 1, end)
                        j = close_p + 1
                        continue
                    name = tokens[j].text
                j += 1
            if j < end and tokens[j].text == ":":  # base clause
                while j < end and tokens[j].text != "{":
                    if tokens[j].text == "<":
                        j = skip_template_args(tokens, j)
                        continue
                    if tokens[j].text == ";":
                        break
                    j += 1
            if j < end and tokens[j].text == "{" and name:
                qual_parts = namespaces + ([klass.name] if klass else [])
                cm = ClassModel(name, "::".join(qual_parts + [name]),
                                tokens[i].line, t)
                fm.classes.append(cm)
                close = fm.brace.get(j, end)
                _parse_region(fm, j + 1, close, namespaces, cm,
                              "public" if t == "struct" else "private")
                i = close + 1
                # Skip trailing declarators up to ';'.
                while i < end and tokens[i].text != ";":
                    i += 1
                i += 1
            else:
                while j < end and tokens[j].text not in (";", "{"):
                    j += 1
                i = (fm.brace.get(j, end) + 1) if (
                    j < end and tokens[j].text == "{") else j + 1
            continue
        if t == "enum":
            j = i + 1
            while j < end and tokens[j].text not in ("{", ";"):
                j += 1
            i = (fm.brace.get(j, end) + 1) if (
                j < end and tokens[j].text == "{") else j + 1
            continue
        if klass is not None and t in ("public", "private", "protected") \
                and i + 1 < end and tokens[i + 1].text == ":":
            access = t
            i += 2
            continue
        if t == "using" or t == "typedef":
            while i < end and tokens[i].text != ";":
                i += 1
            i += 1
            continue
        if t in (";", "}"):
            i += 1
            continue
        # Statement: declaration (field / method / function / variable).
        i = _parse_declaration(fm, i, end, namespaces, klass, access)
    return


def _match_paren(tokens, i, end):
    depth = 0
    j = i
    while j < end:
        if tokens[j].text == "(":
            depth += 1
        elif tokens[j].text == ")":
            depth -= 1
            if depth == 0:
                return j
        j += 1
    return end - 1


def _parse_declaration(fm, i, end, namespaces, klass, access):
    """One declaration at namespace or class scope starting at i. Returns
    the index just past it."""
    tokens = fm.tokens
    stmt_line = tokens[i].line
    qualifiers = []
    j = i
    while j < end and tokens[j].text in TYPE_QUALIFIERS:
        qualifiers.append(tokens[j].text)
        j += 1
    # Destructor / operator / conversion without leading type.
    type_text, k = _parse_type(tokens, j)
    name = None
    qualifier = ""
    if k < end and tokens[k].text == "~":
        name = "~" + (tokens[k + 1].text if k + 1 < end else "")
        k += 2
    elif k < end and tokens[k].text == "operator":
        name = "operator"
        k += 1
        while k < end and tokens[k].text not in ("(", ";"):
            name += tokens[k].text
            k += 1
    elif k < end and re.match(r"[A-Za-z_]", tokens[k].text):
        # TYPE NAME — possibly Class::Name for out-of-line methods.
        name = tokens[k].text
        k += 1
        while k + 1 < end and tokens[k].text == "::" and re.match(
                r"[A-Za-z_~]", tokens[k + 1].text):
            qualifier = name if not qualifier else qualifier + "::" + name
            if tokens[k + 1].text == "~":
                name = "~" + tokens[k + 2].text
                k += 3
            else:
                name = tokens[k + 1].text
                k += 2
    elif type_text is not None and k < end and tokens[k].text == "(":
        # Constructor (type parsed IS the name): Foo(...) {...}
        last = type_text.rsplit("::", 1)
        name = last[-1].split("<", 1)[0]
        qualifier = last[0] if len(last) == 2 else ""
        type_text = None
    if name is None:
        # Unparseable — skip to end of statement.
        return _skip_statement(fm, i, end)
    # What follows the declarator?
    if k < end and tokens[k].text == "(":
        close_p = _match_paren(tokens, k, end)
        # Trailing tokens: const, noexcept, ROCK_* macros, -> type, = 0,
        # : ctor-init, then `{` (definition) or `;`/`=` (declaration).
        m = close_p + 1
        is_const = False
        while m < end:
            tm = tokens[m].text
            if tm == "const":
                is_const = True
                m += 1
            elif tm in ("noexcept", "override", "final", "&", "&&", "try"):
                m += 1
            elif tm == "->":
                _, m2 = _parse_type(tokens, m + 1)
                m = m2 if m2 > m + 1 else m + 2
            elif re.match(r"[A-Z][A-Z0-9_]*$", tm) and m + 1 < end and \
                    tokens[m + 1].text == "(":
                m = _match_paren(tokens, m + 1, end) + 1
            elif tm == ":":
                # ctor-init list: skip Name(expr), Name{expr}, ...
                m += 1
                while m < end and tokens[m].text != "{":
                    if tokens[m].text == "(":
                        m = _match_paren(tokens, m, end) + 1
                    elif tokens[m].text == "<":
                        m2 = skip_template_args(tokens, m)
                        m = m2 if m2 > m else m + 1
                    elif tokens[m].text == ";":
                        break
                    else:
                        m += 1
            else:
                break
        if m < end and tokens[m].text == "{":
            close_b = fm.brace.get(m, end)
            if klass is not None:
                klass.methods.append(MethodModel(
                    name, stmt_line, access, is_const, (m, close_b)))
            fm.functions.append(FunctionModel(
                name, qualifier or (klass.name if klass else ""),
                "::".join(namespaces), stmt_line, (m, close_b),
                (k, close_p)))
            return close_b + 1
        # Declaration only (or `= default/delete/0`).
        if klass is not None:
            klass.methods.append(MethodModel(
                name, stmt_line, access, is_const, None))
        return _skip_statement(fm, m, end)
    # Data member / namespace-scope variable.
    if klass is not None and type_text is not None:
        annotations = {}
        m = k
        while m < end and tokens[m].text not in (";",):
            tm = tokens[m].text
            if tm in ("ROCK_GUARDED_BY", "ROCK_PT_GUARDED_BY") and \
                    m + 1 < end and tokens[m + 1].text == "(":
                close_p = _match_paren(tokens, m + 1, end)
                annotations[tm] = _join_type(
                    [t.text for t in tokens[m + 2:close_p]])
                m = close_p + 1
            elif tm == "{":
                m = fm.brace.get(m, end) + 1
            elif tm == "=":
                m = _skip_statement(fm, m, end) - 1
                break
            else:
                m += 1
        klass.fields.append(FieldModel(
            name, type_text, stmt_line, annotations,
            "static" in qualifiers, "const" in qualifiers or
            type_text.endswith("const"), "mutable" in qualifiers))
        return _skip_statement(fm, k, end)
    if klass is None and type_text is not None:
        fm.globals.setdefault(name, type_text)
    return _skip_statement(fm, k, end)


def _skip_statement(fm, i, end):
    tokens = fm.tokens
    while i < end:
        t = tokens[i].text
        if t == ";":
            return i + 1
        if t == "{":
            i = fm.brace.get(i, end) + 1
            continue
        if t == "(":
            i = _match_paren(tokens, i, end) + 1
            continue
        i += 1
    return end


# ---------------------------------------------------------------------------
# Expression / type resolution inside function bodies
# ---------------------------------------------------------------------------

class Scope:
    """Declarations visible inside one function body: params + locals,
    position-keyed so resolution honours declaration order."""

    def __init__(self, fm, fn, index):
        self.fm = fm
        self.fn = fn
        self.index = index
        self.decls = []  # (token_pos, name, type_text, init_tokens)
        self._collect_params()
        self._collect_locals()

    def _collect_params(self):
        tokens = self.fm.tokens
        start, close = self.fn.param_range
        i = start + 1
        while i < close:
            type_text, k = _parse_type(tokens, i)
            if type_text is None:
                i += 1
                continue
            if k < close and re.match(r"[A-Za-z_]", tokens[k].text):
                self.decls.append((start, tokens[k].text, type_text, None))
                i = k + 1
            else:
                i = k
            while i < close and tokens[i].text != ",":
                if tokens[i].text == "(":
                    i = _match_paren(tokens, i, close) + 1
                elif tokens[i].text == "<":
                    j = skip_template_args(tokens, i)
                    i = j if j > i else i + 1
                else:
                    i += 1
            i += 1

    def _collect_locals(self):
        tokens = self.fm.tokens
        open_b, close_b = self.fn.body_range
        i = open_b + 1
        stmt_start = i
        paren_depth = 0
        while i < close_b:
            t = tokens[i].text
            if t == "(":
                paren_depth += 1
            elif t == ")":
                paren_depth -= 1
            elif paren_depth == 0 and t in (";", "{", "}"):
                stmt_start = i + 1
            if (i == stmt_start or
                    (i > stmt_start and
                     tokens[i - 1].text in ("(", ";", "{"))) and \
                    re.match(r"[A-Za-z_]", t) and t not in CONTROL_KEYWORDS:
                decl = self._try_decl(i, close_b)
                if decl is not None:
                    self.decls.append(decl)
            i += 1

    def _try_decl(self, i, end):
        """Declaration starting at token i: TYPE NAME (init)? — returns
        (pos, name, type_text, init_tokens) or None."""
        tokens = self.fm.tokens
        type_text, k = _parse_type(tokens, i)
        if type_text is None or k >= end:
            return None
        if not re.match(r"[A-Za-z_]", tokens[k].text) or \
                tokens[k].text in CONTROL_KEYWORDS:
            return None
        name = tokens[k].text
        nxt = tokens[k + 1].text if k + 1 < end else ";"
        # Structured binding: auto& [a, b] = / :
        if type_text.startswith("auto") and name == "":
            return None
        if nxt in (";", "=", "{", "(", ":", ",", ")", "["):
            init = None
            if nxt in ("=", "(", "{"):
                j = k + 2 if nxt == "=" else k + 1
                init = []
                depth = 0
                while j < end:
                    tj = tokens[j].text
                    if tj in ("(", "{", "["):
                        depth += 1
                    elif tj in (")", "}", "]"):
                        if depth == 0:
                            break
                        depth -= 1
                    elif tj in (";", ",") and depth == 0:
                        break
                    init.append(tj)
                    j += 1
            # Single-token "types" followed by '(' are far more likely
            # calls than declarations: require qualification/templates.
            if nxt == "(" and "::" not in type_text and "<" not in \
                    type_text and type_text not in BUILTIN_TYPE_TOKENS and \
                    not type_text.endswith(("&", "*")) and \
                    type_text not in self.index.classes:
                return None
            return (i, name, type_text, init)
        return None

    def type_of(self, name, pos):
        """Type of `name` at token position `pos` (nearest preceding
        declaration; falls back to enclosing-class fields, file globals,
        then the cindex overlay)."""
        best = None
        for decl_pos, decl_name, type_text, init in self.decls:
            if decl_name == name and decl_pos <= pos:
                if best is None or decl_pos > best[0]:
                    best = (decl_pos, type_text, init)
        if best is not None:
            decl_pos, type_text, init = best
            if type_text.rstrip("&*") == "auto" and init:
                # Resolve the initializer at the declaration point with a
                # cycle guard — misparsed statements can make an init
                # appear to reference its own name.
                if not hasattr(self, "_resolving"):
                    self._resolving = set()
                if name in self._resolving:
                    return None
                self._resolving.add(name)
                try:
                    resolved = resolve_expr_type(init, self, decl_pos)
                finally:
                    self._resolving.discard(name)
                if resolved:
                    return resolved
                return None
            return type_text
        owner = self.index.classes.get(self.fn.qualifier) if \
            self.fn.qualifier else None
        if owner is None and self.fn.qualifier:
            owner = self.index.classes_q.get(self.fn.qualifier)
        if owner is not None:
            f = owner.field(name)
            if f is not None:
                return f.type_text
        # Fields of classes defined in the same file (inline methods keep
        # qualifier == class name, handled above; lambdas inside methods
        # also land here).
        if name in self.fm.globals:
            return self.fm.globals[name]
        if self.index.overlay is not None:
            return self.index.overlay.type_of(self.fm.path, name,
                                              self.fm.tokens[pos].line)
        return None


def template_args(type_text):
    """Top-level template argument list of `type_text`, or []."""
    lt = type_text.find("<")
    if lt < 0:
        return []
    depth = 0
    args = []
    current = ""
    for c in type_text[lt:]:
        if c == "<":
            depth += 1
            if depth == 1:
                continue
        elif c == ">":
            depth -= 1
            if depth == 0:
                if current.strip():
                    args.append(current.strip())
                break
        elif c == "," and depth == 1:
            args.append(current.strip())
            current = ""
            continue
        current += c
    return args


def container_kind(type_text):
    if type_text is None:
        return None
    base = type_text.split("<", 1)[0]
    short = base.rsplit("::", 1)[-1].strip("& *")
    if short in UNORDERED_CONTAINERS:
        return "unordered"
    if short in SEQUENCE_CONTAINERS:
        return "sequence"
    if short in ORDERED_ASSOC:
        return "ordered"
    return None


def element_type(type_text):
    """Element type yielded by iterating `type_text`."""
    kind = container_kind(type_text)
    args = template_args(type_text)
    if not args:
        return None
    if kind in ("sequence",):
        return args[0]
    if kind in ("ordered", "unordered"):
        short = type_text.split("<", 1)[0].rsplit("::", 1)[-1].strip("& *")
        if "map" in short and len(args) >= 2:
            return "std::pair<%s,%s>" % (args[0], args[1])
        return args[0]
    return None


def resolve_expr_type(expr_tokens, scope, pos):
    """Type of a member/index chain like `fs.mu`, `queues[i]`,
    `plan->delays`. Returns a type string or None."""
    toks = [t for t in expr_tokens if t not in ("&", "*")]
    if not toks:
        return None
    i = 0
    if toks[0] == "this":
        current = None
        owner = scope.index.classes.get(scope.fn.qualifier)
        if owner:
            current = owner.qualified
        i = 1
        if i < len(toks) and toks[i] in ("->", "."):
            i += 1
        if current is None:
            return None
    else:
        if not re.match(r"[A-Za-z_]", toks[0]):
            return None
        current = scope.type_of(toks[0], pos)
        if current is None:
            return None
        i = 1
    while i < len(toks):
        t = toks[i]
        if t == "[":
            depth = 0
            while i < len(toks):
                if toks[i] == "[":
                    depth += 1
                elif toks[i] == "]":
                    depth -= 1
                    if depth == 0:
                        break
                i += 1
            i += 1
            current = element_type(current)
            if current is None:
                return None
            continue
        if t in (".", "->"):
            if i + 1 >= len(toks):
                return None
            member = toks[i + 1]
            if i + 2 < len(toks) and toks[i + 2] == "(":
                if member in ("begin", "end", "cbegin", "cend"):
                    return current  # iterator over `current`
                return None  # arbitrary call: give up
            if member in ("first", "second") and \
                    container_kind(current) is None and \
                    "pair" in current.split("<", 1)[0]:
                args = template_args(current)
                if len(args) == 2:
                    current = args[0] if member == "first" else args[1]
                    i += 2
                    continue
                return None
            cm = scope.index.class_for_type(current)
            if cm is None:
                return None
            f = cm.field(member)
            if f is None:
                return None
            current = f.type_text
            i += 2
            continue
        break
    return current


# ---------------------------------------------------------------------------
# cindex frontend: semantic type overlay from libclang
# ---------------------------------------------------------------------------

class CindexOverlay:
    """Canonical variable/field types per (file, name, line), harvested
    from libclang cursors. The structural model still comes from the
    textual parser; the overlay answers the type questions it cannot —
    typedefs, auto, template aliases — with the real AST's answer."""

    def __init__(self):
        self.types = collections.defaultdict(list)  # (path,name)->[(ln,ty)]
        self.range_for = collections.defaultdict(list)  # path->[(ln,ty)]

    def add(self, path, name, line, type_text):
        self.types[(path, name)].append((line, type_text))

    def type_of(self, path, name, line):
        best = None
        for decl_line, type_text in self.types.get((path, name), ()):
            if decl_line <= line and (best is None or decl_line > best[0]):
                best = (decl_line, type_text)
        if best is None:
            for decl_line, type_text in self.types.get((path, name), ()):
                if best is None or decl_line < best[0]:
                    best = (decl_line, type_text)
        return best[1] if best else None


def load_cindex():
    try:
        from clang import cindex  # noqa: deferred, optional
    except ImportError:
        return None
    lib = os.environ.get("ROCK_LIBCLANG")
    if lib:
        try:
            cindex.Config.set_library_file(lib)
        except Exception:  # noqa: BLE001 — config may already be frozen
            pass
    try:
        cindex.Index.create()
    except Exception:  # noqa: BLE001 — unloadable library
        return None
    return cindex


def build_overlay(cindex, compile_db, root, paths):
    """Parses every TU whose main file is in `paths` and records canonical
    declared types for VarDecl/ParmDecl/FieldDecl cursors in first-party
    files."""
    overlay = CindexOverlay()
    index = cindex.Index.create()
    wanted = {os.path.abspath(p) for p in paths}
    decl_kinds = (cindex.CursorKind.VAR_DECL, cindex.CursorKind.PARM_DECL,
                  cindex.CursorKind.FIELD_DECL)
    for entry in compile_db:
        absolute = os.path.normpath(
            os.path.join(entry.get("directory", ""), entry["file"]))
        if absolute not in wanted:
            continue
        args = []
        raw = entry.get("arguments") or entry.get("command", "").split()
        skip_next = False
        for a in raw[1:]:
            if skip_next:
                skip_next = False
                continue
            if a in ("-c", "-o"):
                skip_next = a == "-o"
                continue
            if a == entry["file"] or a.endswith(entry["file"]):
                continue
            args.append(a)
        try:
            tu = index.parse(absolute, args=args)
        except Exception:  # noqa: BLE001 — parse failure degrades to textual
            continue
        for cursor in tu.cursor.walk_preorder():
            try:
                if cursor.kind not in decl_kinds or not cursor.location.file:
                    continue
                path = os.path.relpath(cursor.location.file.name, root)
                if path.startswith(".."):
                    continue
                type_text = cursor.type.get_canonical().spelling
                type_text = re.sub(r"\bstd::__[a-z0-9_]+::", "std::",
                                   type_text)
                overlay.add(path, cursor.spelling, cursor.location.line,
                            type_text)
            except Exception:  # noqa: BLE001 — cursor API hiccup
                continue
    return overlay


# ---------------------------------------------------------------------------
# Checks
# ---------------------------------------------------------------------------

def iter_loops(fm, fn, scope):
    """Yields (loop_line, expr_tokens, body_open, body_close, header_pos)
    for range-for loops and `for (auto it = X.begin(); ...)` iterator
    loops in `fn`."""
    tokens = fm.tokens
    open_b, close_b = fn.body_range
    i = open_b
    while i < close_b:
        if tokens[i].text != "for" or i + 1 >= close_b or \
                tokens[i + 1].text != "(":
            i += 1
            continue
        close_p = _match_paren(tokens, i + 1, close_b)
        header = tokens[i + 2:close_p]
        # Body: `{ ... }` or single statement up to ';'.
        if close_p + 1 < close_b and tokens[close_p + 1].text == "{":
            body_open = close_p + 1
            body_close = fm.brace.get(body_open, close_b)
        else:
            body_open = close_p
            body_close = body_open + 1
            depth = 0
            while body_close < close_b:
                bt = tokens[body_close].text
                if bt in ("(", "{"):
                    depth += 1
                elif bt in (")", "}"):
                    depth -= 1
                elif bt == ";" and depth == 0:
                    break
                body_close += 1
        # Range-for: a ':' at paren depth 0 within the header.
        colon = None
        depth = 0
        for h, tok in enumerate(header):
            if tok.text in ("(", "[", "{"):
                depth += 1
            elif tok.text in (")", "]", "}"):
                depth -= 1
            elif tok.text == ":" and depth == 0:
                colon = h
                break
            elif tok.text == ";" and depth == 0:
                break
        if colon is not None:
            expr = [t.text for t in header[colon + 1:]]
            yield (tokens[i].line, expr, body_open, body_close, i)
        else:
            # Iterator loop: first clause `auto it = X.begin()`.
            first = []
            for tok in header:
                if tok.text == ";":
                    break
                first.append(tok.text)
            if len(first) >= 5 and first[-1] == ")" and first[-2] == "(" and \
                    first[-3] in ("begin", "cbegin"):
                base = []
                for t in reversed(first[:-4]):
                    if t in ("=", "auto"):
                        break
                    base.append(t)
                base.reverse()
                yield (tokens[i].line, base, body_open, body_close, i)
        i = body_open + 1


def check_nondeterministic_iteration(index, findings):
    for fm in index.files:
        for fn in fm.functions:
            scope = Scope(fm, fn, index)
            for line, expr, body_open, body_close, header_pos in \
                    iter_loops(fm, fn, scope):
                expr_type = resolve_expr_type(expr, scope, header_pos)
                if container_kind(expr_type) != "unordered":
                    continue
                if fm.annotation(line, "ordered-ok"):
                    continue
                sink = _find_order_sink(fm, scope, body_open, body_close)
                if sink is None:
                    continue
                sink_name, sink_line = sink
                # Canonical collect-then-sort drain: an append sink whose
                # receiver is std::sort()ed after the loop is
                # order-insensitive — the sort erases iteration order.
                base = sink_name.split(".", 1)[0]
                if _sorted_after(fm, fn, body_close, base):
                    continue
                findings.append(Finding(
                    fm.path, line, "nondeterministic-iteration",
                    "loop over unordered container '%s' reaches "
                    "order-sensitive sink '%s' (line %d); drain a sorted "
                    "copy or annotate "
                    "// ROCK_ANALYZE(ordered-ok: <reason>)" % (
                        "".join(expr), sink_name, sink_line)))


def _sorted_after(fm, fn, body_close, base):
    """True when `sort(base.begin(), base.end()...)` appears between the
    loop's closing brace and the end of the enclosing function."""
    tokens = fm.tokens
    _, fn_close = fn.body_range
    i = body_close
    while i + 4 < fn_close:
        if tokens[i].text == "sort" and tokens[i + 1].text == "(" and \
                tokens[i + 2].text == base and \
                tokens[i + 3].text == "." and \
                tokens[i + 4].text == "begin":
            return True
        i += 1
    return False


def _find_order_sink(fm, scope, body_open, body_close):
    """First order-sensitive sink inside a loop body: a configured sink
    call, an emission member call, or an append to a sequence declared
    outside the loop."""
    tokens = fm.tokens
    loop_locals = set()
    i = body_open + 1
    while i < body_close:
        t = tokens[i].text
        nxt = tokens[i + 1].text if i + 1 < body_close else ""
        if re.match(r"[A-Za-z_]", t) and nxt == "(":
            receiver = _receiver_chain(tokens, i)
            if t in SINK_CALLS:
                return (t, tokens[i].line)
            if receiver and t in SINK_MEMBER_CALLS:
                return ("%s.%s" % (receiver[-1], t), tokens[i].line)
            if receiver and t in APPEND_METHODS:
                base = receiver[0]
                if base not in loop_locals:
                    base_type = scope.type_of(base, i)
                    if base_type is None or \
                            container_kind(base_type) in ("sequence", None):
                        if base_type is None or \
                                container_kind(base_type) == "sequence" or \
                                "string" in base_type:
                            return ("%s.%s" % (base, t), tokens[i].line)
        # Track locals declared inside the loop body (appends to those are
        # invisible outside a single iteration).
        if re.match(r"[A-Za-z_]", t) and t not in CONTROL_KEYWORDS and \
                (tokens[i - 1].text in (";", "{", "}", "(") or
                 i == body_open + 1):
            decl = scope._try_decl(i, body_close)
            if decl is not None:
                loop_locals.add(decl[1])
        if t == "+=":
            base_pos = i - 1
            chain = _receiver_chain(tokens, base_pos + 1)
            base = chain[0] if chain else (
                tokens[base_pos].text if re.match(
                    r"[A-Za-z_]", tokens[base_pos].text) else None)
            if base and base not in loop_locals:
                base_type = scope.type_of(base, i)
                if base_type is not None and "string" in base_type:
                    return ("%s +=" % base, tokens[i].line)
        i += 1
    return None


def _receiver_chain(tokens, call_pos):
    """For `a.b.c(` at call_pos == index of `c`, returns ['a','b'];
    empty when the call has no receiver."""
    chain = []
    i = call_pos - 1
    while i > 0 and tokens[i].text in (".", "->"):
        prev = tokens[i - 1]
        if prev.text == ")":
            return chain[::-1] if chain else ["<call>"]
        if prev.text == "]":
            depth = 0
            j = i - 1
            while j > 0:
                if tokens[j].text == "]":
                    depth += 1
                elif tokens[j].text == "[":
                    depth -= 1
                    if depth == 0:
                        break
                j -= 1
            i = j
            prev = tokens[i - 1]
        if not re.match(r"[A-Za-z_]", prev.text):
            break
        chain.append(prev.text)
        i -= 2
    return chain[::-1]


def check_guarded_fields(index, findings):
    for fm in index.files:
        for cm in fm.classes:
            mutex_fields = [f for f in cm.fields if _is_mutex_type(
                f.type_text)]
            if not mutex_fields:
                continue
            for f in cm.fields:
                if f in mutex_fields or f.is_static:
                    continue
                if f.is_const and not f.is_mutable:
                    continue
                if any(tok in f.type_text for tok in
                       GUARD_EXEMPT_TYPE_TOKENS):
                    continue
                if "ROCK_GUARDED_BY" in f.annotations or \
                        "ROCK_PT_GUARDED_BY" in f.annotations:
                    continue
                if fm.annotation(f.line, "unguarded-ok"):
                    continue
                findings.append(Finding(
                    fm.path, f.line, "guarded-field",
                    "field '%s::%s' in a mutex-owning class has no "
                    "ROCK_GUARDED_BY — the thread-safety analysis skips "
                    "unannotated fields; annotate it or mark "
                    "// ROCK_ANALYZE(unguarded-ok: <reason>)" % (
                        cm.name, f.name)))
        # Raw std:: locks outside the annotated wrappers.
        if not fm.path.startswith("src/common/"):
            for lineno, raw in enumerate(fm.raw_lines, start=1):
                pass  # raw scan happens on stripped text below
            stripped = strip_comments_and_strings(
                "\n".join(fm.raw_lines)).split("\n")
            for lineno, code in enumerate(stripped, start=1):
                if RAW_MUTEX_RE.search(code):
                    if fm.annotation(lineno, "raw-mutex-ok"):
                        continue
                    findings.append(Finding(
                        fm.path, lineno, "guarded-field",
                        "raw std:: mutex/lock carries no capability — the "
                        "thread-safety analysis cannot see it; use the "
                        "annotated rock::common wrappers "
                        "(src/common/mutex.h)"))


def _is_mutex_type(type_text):
    base = type_text.rstrip("&* ")
    return base in MUTEX_TYPE_EXACT or \
        any(base.endswith(s) for s in MUTEX_TYPE_SUFFIXES)


def check_lock_order(index, findings, declared_edges):
    """Collects nested lock acquisitions into a graph; findings for
    undeclared edges and for cycles over declared ∪ discovered."""
    discovered = {}  # (from, to) -> (path, line)
    for fm in index.files:
        for fn in fm.functions:
            scope = Scope(fm, fn, index)
            _walk_lock_scopes(fm, fn, scope, discovered, findings)
    edges = dict(discovered)
    for (a, b), site in discovered.items():
        if (a, b) not in declared_edges:
            findings.append(Finding(
                site[0], site[1], "lock-order",
                "undeclared lock-order edge %s -> %s; add it to "
                "scripts/lock_order.txt (reviewed there) or restructure "
                "to avoid nesting" % (a, b)))
    for (a, b) in declared_edges:
        edges.setdefault((a, b), ("scripts/lock_order.txt", 1))
    # Cycle detection (DFS) over the merged graph.
    graph = collections.defaultdict(list)
    for (a, b), site in edges.items():
        graph[a].append((b, site))
    state = {}
    stack = []

    def dfs(node):
        state[node] = 1
        for nxt, site in graph.get(node, ()):
            if state.get(nxt, 0) == 1:
                cycle = stack[stack.index(nxt):] if nxt in stack else [nxt]
                findings.append(Finding(
                    site[0], site[1], "lock-order",
                    "lock-order cycle: %s -> %s closes a cycle through "
                    "[%s]" % (node, nxt, " -> ".join(cycle + [nxt]))))
            elif state.get(nxt, 0) == 0:
                stack.append(nxt)
                dfs(nxt)
                stack.pop()
        state[node] = 2

    for node in list(graph):
        if state.get(node, 0) == 0:
            stack.append(node)
            dfs(node)
            stack.pop()


def _walk_lock_scopes(fm, fn, scope, discovered, findings):
    tokens = fm.tokens
    open_b, close_b = fn.body_range
    held = []  # (identity, scope_end_token, line)
    brace_stack = [close_b]
    i = open_b + 1
    while i < close_b:
        t = tokens[i].text
        if t == "{":
            brace_stack.append(fm.brace.get(i, close_b))
        elif t == "}":
            if len(brace_stack) > 1:
                brace_stack.pop()
            held = [h for h in held if h[1] > i]
        elif t in LOCK_RAII and i + 2 < close_b and \
                re.match(r"[A-Za-z_]", tokens[i + 1].text) and \
                tokens[i + 2].text == "(":
            close_p = _match_paren(tokens, i + 2, close_b)
            expr = [tok.text for tok in tokens[i + 3:close_p]]
            identity = _lock_identity(expr, scope, i)
            line = tokens[i].line
            scope_end = brace_stack[-1]
            held = [h for h in held if h[1] > i]
            for h_ident, _, _h_line in held:
                if h_ident == identity:
                    if not fm.annotation(line, "lock-order-ok"):
                        findings.append(Finding(
                            fm.path, line, "lock-order",
                            "acquisition of '%s' while already holding "
                            "'%s' (same identity) — self-deadlock unless "
                            "instances are provably distinct and "
                            "consistently ordered; annotate "
                            "// ROCK_ANALYZE(lock-order-ok: <reason>)"
                            % (identity, h_ident)))
                else:
                    discovered.setdefault((h_ident, identity),
                                          (fm.path, line))
            held.append((identity, scope_end, line))
            i = close_p
        i += 1


def _lock_identity(expr_tokens, scope, pos):
    """Normalizes a lock expression to a stable identity:
    `fs.mu` (fs: FaultState&) -> FaultState::mu; a bare member of the
    enclosing class -> Class::member; else the textual expression."""
    toks = [t for t in expr_tokens if t not in ("&", "*")]
    if not toks:
        return "<empty>"
    # Member chain: resolve the base, identity is owner-type::member.
    for i in range(len(toks) - 2, -1, -1):
        if toks[i] in (".", "->"):
            member = toks[i + 1]
            base_type = resolve_expr_type(toks[:i], scope, pos)
            cm = scope.index.class_for_type(base_type) if base_type else None
            if cm is not None:
                return "%s::%s" % (cm.name, member)
            return "".join(toks)
    name = toks[0]
    owner = scope.index.classes.get(scope.fn.qualifier)
    if owner is not None and owner.field(name) is not None:
        return "%s::%s" % (owner.name, name)
    # A local/param mutex (fixtures, ad-hoc): type it if possible.
    base_type = scope.type_of(name, pos)
    if base_type is not None and _is_mutex_type(base_type):
        return name
    return "".join(toks)


def check_signal_safety(index, findings):
    # (a) call-graph walk from every signal-handler root.
    for root_name in SIGNAL_ROOTS:
        for fm, fn in index.functions.get(root_name, ()):
            visited = set()
            _walk_as_safe(index, fm, fn, visited, findings, [root_name])
    # (b) signal/timer syscall confinement (one audited seam).
    for fm in index.files:
        if fm.path.endswith(SIGNAL_SEAM_FILE) or \
                fm.path == SIGNAL_SEAM_FILE:
            continue
        stripped = strip_comments_and_strings(
            "\n".join(fm.raw_lines)).split("\n")
        for lineno, code in enumerate(stripped, start=1):
            if RAW_SIGNAL_RE.search(code):
                if fm.annotation(lineno, "signal-seam-ok"):
                    continue
                findings.append(Finding(
                    fm.path, lineno, "signal-safety",
                    "signal handlers / profiling timers are confined to "
                    "%s (the audited async-signal-safety seam)" %
                    SIGNAL_SEAM_FILE))


def _walk_as_safe(index, fm, fn, visited, findings, path_names):
    key = (fm.path, fn.name, fn.line)
    if key in visited:
        return
    visited.add(key)
    scope = Scope(fm, fn, index)
    decl_positions = {d[0] for d in scope.decls}
    tokens = fm.tokens
    open_b, close_b = fn.body_range
    i = open_b + 1
    while i < close_b:
        t = tokens[i].text
        nxt = tokens[i + 1].text if i + 1 < close_b else ""
        if re.match(r"[A-Za-z_]", t) and nxt == "(" and \
                t not in CONTROL_KEYWORDS:
            # Skip declarations parsed as TYPE NAME(init).
            prev = tokens[i - 1].text
            is_decl_name = any(dp < i and scope.fm.tokens[dp].line ==
                               tokens[i].line for dp in decl_positions
                               if scope.decls and any(
                                   d[0] == dp and d[1] == t
                                   for d in scope.decls))
            if is_decl_name:
                i += 1
                continue
            if prev == "::" or re.match(r"[A-Za-z_]", prev) or \
                    prev in (".", "->", ";", "{", "}", "(", ",", "=", "&&",
                             "||", "!", "return", "<", ">", "+", "-", "[",
                             "+=", "==", "!="):
                if t in AS_SAFE_CALLS:
                    i += 1
                    continue
                if fm.annotation(tokens[i].line, "as-safe"):
                    i += 1
                    continue
                callees = index.functions.get(t, ())
                if callees:
                    # Prefer a definition in the same file (statics).
                    same = [c for c in callees if c[0].path == fm.path]
                    for callee_fm, callee_fn in (same or callees[:1]):
                        _walk_as_safe(index, callee_fm, callee_fn, visited,
                                      findings, path_names + [t])
                else:
                    findings.append(Finding(
                        fm.path, tokens[i].line, "signal-safety",
                        "call to '%s' from signal-handler path [%s] is "
                        "not on the async-signal-safe allowlist; prove "
                        "it safe and annotate "
                        "// ROCK_ANALYZE(as-safe: <reason>), or move it "
                        "out of the handler" % (
                            t, " -> ".join(path_names))))
        i += 1


def check_span_coverage(index, findings):
    for qualified in ENTRY_POINT_CLASSES:
        cm = index.classes_q.get(qualified)
        if cm is None:
            continue
        cm_file = next((fm for fm in index.files if cm in fm.classes), None)
        for method in cm.methods:
            if method.access != "public":
                continue
            if method.name == cm.name or method.name.startswith("~") or \
                    method.name.startswith("operator"):
                continue
            body_fm, body_range = None, None
            if method.body_range is not None:
                body_fm, body_range = cm_file, method.body_range
            else:
                for fn_fm, fn in index.functions.get(method.name, ()):
                    if fn.qualifier == cm.name or \
                            fn.qualifier == cm.qualified:
                        body_fm, body_range = fn_fm, fn.body_range
                        break
            if body_range is None:
                continue  # declaration without a definition in scope
            open_b, close_b = body_range
            body = body_fm.tokens[open_b:close_b + 1]
            if any(tok.text in SPAN_TOKENS for tok in body):
                continue
            # Trivial accessor exemption: a single return statement.
            n_semis = sum(1 for tok in body if tok.text == ";")
            returns = any(tok.text == "return" for tok in body)
            if returns and n_semis <= 1 and len(body) <= 18:
                continue
            line = body_fm.tokens[open_b].line
            if body_fm.annotation(line, "no-span-ok") or \
                    (cm_file is not None and
                     cm_file.annotation(method.line, "no-span-ok")):
                continue
            findings.append(Finding(
                body_fm.path, line, "span-coverage",
                "public entry point %s::%s opens no ScopedSpan "
                "(ROCK_OBS_SPAN) — external operations must be "
                "attributable in traces; add one or annotate "
                "// ROCK_ANALYZE(no-span-ok: <reason>)" % (
                    cm.name, method.name)))


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

def repo_root():
    return os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def load_lock_order(path):
    edges = set()
    if not os.path.exists(path):
        return edges
    with open(path, encoding="utf-8") as fp:
        for line in fp:
            line = line.split("#", 1)[0].strip()
            if not line:
                continue
            if "->" not in line:
                continue
            a, b = (part.strip() for part in line.split("->", 1))
            edges.add((a, b))
    return edges


def analyze(paths, root, lock_order_path, overlay=None):
    files = []
    for path in paths:
        rel = os.path.relpath(path, root) if os.path.isabs(path) else path
        with open(os.path.join(root, rel), encoding="utf-8") as fp:
            text = fp.read()
        files.append(parse_file(rel.replace(os.sep, "/"), text))
    index = Index(files, overlay)
    findings = []
    check_nondeterministic_iteration(index, findings)
    check_guarded_fields(index, findings)
    check_lock_order(index, findings, load_lock_order(lock_order_path))
    check_signal_safety(index, findings)
    check_span_coverage(index, findings)
    return findings


def tree_paths(build_dir, root):
    """Analyzed file set in tree mode: src/ TUs from the compilation
    database plus every first-party header under src/."""
    db_path = os.path.join(build_dir, "compile_commands.json")
    with open(db_path, encoding="utf-8") as fp:
        db = json.load(fp)
    paths = set()
    for entry in db:
        absolute = os.path.normpath(
            os.path.join(entry.get("directory", ""), entry["file"]))
        rel = os.path.relpath(absolute, root)
        if rel.startswith("src/") and rel.endswith(".cc"):
            paths.add(rel)
    for dirpath, _dirnames, filenames in os.walk(os.path.join(root, "src")):
        for name in filenames:
            if name.endswith(".h"):
                rel = os.path.relpath(os.path.join(dirpath, name), root)
                paths.add(rel.replace(os.sep, "/"))
    return sorted(paths), db


def aggregate(findings):
    agg = {}
    for f in findings:
        key = (f.path, f.check)
        agg[key] = agg.get(key, 0) + 1
    return agg


def read_baseline(path):
    baseline = {}
    if not os.path.exists(path):
        return baseline
    with open(path, encoding="utf-8") as fp:
        for line in fp:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            rel, check, count = line.split("\t")
            baseline[(rel, check)] = int(count)
    return baseline


def write_baseline(path, agg):
    with open(path, "w", encoding="utf-8") as fp:
        fp.write("# rock_analyze ratchet baseline: file<TAB>check<TAB>"
                 "count.\n# Regenerate with scripts/rock_analyze.py "
                 "--update-baseline. The goal state is empty: every\n"
                 "# finding is fixed or carries a justified ROCK_ANALYZE "
                 "annotation.\n")
        for (rel, check), count in sorted(agg.items()):
            fp.write("%s\t%s\t%d\n" % (rel, check, count))


def diff_against_baseline(agg, baseline):
    regressions = []
    for key, count in sorted(agg.items()):
        allowed = baseline.get(key, 0)
        if count > allowed:
            regressions.append((key[0], key[1], count, allowed))
    return regressions


def config_hash(root, build_dir, lock_order_path):
    digest = hashlib.sha256()
    for path in (os.path.join(build_dir, "compile_commands.json"),
                 os.path.abspath(__file__), lock_order_path):
        if os.path.exists(path):
            with open(path, "rb") as fp:
                digest.update(fp.read())
        digest.update(b"\0")
    return digest.hexdigest()


def main():
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--build-dir", default=None,
                        help="build dir holding compile_commands.json "
                             "(tree mode)")
    parser.add_argument("--files", nargs="*", default=None,
                        help="analyze exactly these files (fixture mode)")
    parser.add_argument("--root", default=None)
    parser.add_argument("--backend", choices=("auto", "textual", "cindex"),
                        default="auto")
    parser.add_argument("--lock-order", default=None,
                        help="checked-in lock-order edge list (default "
                             "scripts/lock_order.txt)")
    parser.add_argument("--baseline", default=None)
    parser.add_argument("--update-baseline", action="store_true")
    parser.add_argument("--cache", default=None)
    parser.add_argument("--expect", action="append", default=[],
                        metavar="CHECK=N",
                        help="fixture mode: require >= N findings of CHECK")
    parser.add_argument("--expect-clean", action="store_true",
                        help="fixture mode: require zero findings")
    parser.add_argument("--self-test", action="store_true")
    args = parser.parse_args()

    if args.self_test:
        return self_test()

    root = args.root or repo_root()
    lock_order_path = args.lock_order or os.path.join(
        root, "scripts", "lock_order.txt")

    overlay = None
    backend = args.backend
    cindex = load_cindex() if backend in ("auto", "cindex") else None
    if backend == "cindex" and cindex is None:
        print("rock_analyze.py: --backend cindex requested but "
              "clang.cindex is unavailable", file=sys.stderr)
        return 2

    if args.files is not None:
        findings = analyze(args.files, root, lock_order_path)
        return report_fixture(findings, args)

    if args.build_dir is None:
        print("rock_analyze.py: need --build-dir or --files",
              file=sys.stderr)
        return 2

    key = config_hash(root, args.build_dir, lock_order_path)
    findings = None
    if args.cache and os.path.exists(args.cache):
        with open(args.cache, encoding="utf-8") as fp:
            cached = json.load(fp)
        if cached.get("key") == key:
            findings = [Finding(*f) for f in cached["findings"]]
            print("rock_analyze.py: cache hit (%s)" % args.cache)

    if findings is None:
        paths, db = tree_paths(args.build_dir, root)
        if cindex is not None:
            print("rock_analyze.py: building libclang type overlay "
                  "(%d TUs)" % sum(1 for p in paths if p.endswith(".cc")))
            overlay = build_overlay(
                cindex, db, root,
                [os.path.join(root, p) for p in paths])
            backend_used = "cindex"
        else:
            backend_used = "textual"
        print("rock_analyze.py: analyzing %d files (backend: %s)" % (
            len(paths), backend_used))
        findings = analyze(paths, root, lock_order_path, overlay)
        if args.cache:
            with open(args.cache, "w", encoding="utf-8") as fp:
                json.dump({"key": key,
                           "findings": [list(f) for f in findings]}, fp)

    agg = aggregate(findings)
    baseline_path = args.baseline or os.path.join(
        root, "scripts", "rock_analyze_baseline.txt")
    if args.update_baseline:
        write_baseline(baseline_path, agg)
        print("rock_analyze.py: baseline rewritten (%d finding classes)"
              % len(agg))
        return 0
    baseline = read_baseline(baseline_path)
    regressions = diff_against_baseline(agg, baseline)
    fixed = [key for key in baseline if key not in agg]
    if fixed:
        print("rock_analyze.py: %d baseline finding class(es) no longer "
              "fire — consider --update-baseline to ratchet down"
              % len(fixed))
    if regressions:
        print("NEW rock_analyze findings (not in baseline):")
        by_key = collections.defaultdict(list)
        for f in findings:
            by_key[(f.path, f.check)].append(f)
        for rel, check, count, allowed in regressions:
            print("  %s\t%s\t%d (baseline %d)" % (rel, check, count,
                                                  allowed))
            for f in by_key[(rel, check)]:
                print("    %s:%d: %s" % (f.path, f.line, f.message))
        return 1
    print("rock_analyze.py: no new findings (%d existing, %d baselined)"
          % (len(findings), len(baseline)))
    return 0


def report_fixture(findings, args):
    for f in sorted(findings):
        print("%s:%d: [%s] %s" % (f.path, f.line, f.check, f.message))
    counts = collections.Counter(f.check for f in findings)
    failures = []
    if args.expect_clean and findings:
        failures.append("expected zero findings, got %d" % len(findings))
    for spec in args.expect:
        check, _, want = spec.partition("=")
        if check not in CHECKS:
            failures.append("unknown check in --expect: %r" % check)
            continue
        if counts.get(check, 0) < int(want or "1"):
            failures.append("expected >= %s findings of %s, got %d" % (
                want or "1", check, counts.get(check, 0)))
    if failures:
        for failure in failures:
            print("rock_analyze.py: FAIL: " + failure, file=sys.stderr)
        return 1
    if args.expect or args.expect_clean:
        print("rock_analyze.py: fixture expectations met (%s)" %
              (dict(counts) if counts else "clean"))
        return 0
    return 1 if findings else 0


# ---------------------------------------------------------------------------
# Self test
# ---------------------------------------------------------------------------

SELF_TEST_GUARDED_BAD = """
namespace rock::par {
struct WorkerQueue {
  common::Mutex mu;
  std::deque<size_t> queue ROCK_GUARDED_BY(mu);
  bool closed = false;
  int hits = 0;
};
}  // namespace rock::par
"""

SELF_TEST_GUARDED_GOOD = """
namespace rock::par {
struct WorkerQueue {
  common::Mutex mu;
  std::deque<size_t> queue ROCK_GUARDED_BY(mu);
  std::atomic<int> depth{0};
  // ROCK_ANALYZE(unguarded-ok: written once before workers start)
  bool seeded = false;
  const int capacity = 8;
};
}  // namespace rock::par
"""

SELF_TEST_NONDET_BAD = """
namespace rock {
struct Store {
  std::unordered_map<int, int> cache_;
  void Drain(std::vector<int>& out) {
    for (const auto& [k, v] : cache_) {
      out.push_back(v);
    }
  }
};
}  // namespace rock
"""

SELF_TEST_NONDET_GOOD = """
namespace rock {
struct Store {
  std::unordered_map<int, int> cache_;
  std::map<int, int> sorted_;
  int Sum() {
    int total = 0;
    for (const auto& [k, v] : cache_) {
      total += v;
    }
    for (const auto& [k, v] : sorted_) {
      Emit(k);
    }
    // ROCK_ANALYZE(ordered-ok: drained into a set, sorted by key below)
    for (const auto& [k, v] : cache_) {
      keys_.push_back(k);
    }
    return total;
  }
  void Emit(int k);
  std::vector<int> keys_;
};
}  // namespace rock
"""

SELF_TEST_LOCK_BAD = """
namespace rock {
struct A { common::Mutex mu; int x ROCK_GUARDED_BY(mu); };
struct B { common::Mutex mu; int y ROCK_GUARDED_BY(mu); };
void Forward(A& a, B& b) {
  common::MutexLock la(a.mu);
  common::MutexLock lb(b.mu);
}
void Backward(A& a, B& b) {
  common::MutexLock lb(b.mu);
  common::MutexLock la(a.mu);
}
}  // namespace rock
"""

SELF_TEST_LOCK_GOOD = """
namespace rock {
struct A { common::Mutex mu; int x ROCK_GUARDED_BY(mu); };
struct B { common::Mutex mu; int y ROCK_GUARDED_BY(mu); };
void Forward(A& a, B& b) {
  common::MutexLock la(a.mu);
  common::MutexLock lb(b.mu);
}
void Disjoint(A& a, B& b) {
  { common::MutexLock la(a.mu); }
  { common::MutexLock lb(b.mu); }
}
}  // namespace rock
"""

SELF_TEST_SIGNAL_BAD = """
namespace rock::obs {
void Helper() {
  malloc(32);
}
void SigprofHandler(int signo) {
  Helper();
  printf("tick");
}
}  // namespace rock::obs
"""

SELF_TEST_SIGNAL_GOOD = """
namespace rock::obs {
int ThisTid() { return syscall(186); }
void SigprofHandler(int signo) {
  int tid = ThisTid();
  counter.fetch_add(1, std::memory_order_relaxed);
  ::backtrace(pcs, 48);
}
}  // namespace rock::obs
"""

SELF_TEST_SPAN = """
namespace rock::core {
class Rock {
 public:
  int port() const { return port_; }
  void Detect() {
    ROCK_OBS_SPAN("rock.detect");
    Run();
  }
  void Correct();
  void Train();
 private:
  void Run();
  int port_ = 0;
};
void Rock::Correct() {
  Run();
  Run();
}
// ROCK_ANALYZE(no-span-ok: pure delegation, callee opens the span)
void Rock::Train() {
  Run();
}
}  // namespace rock::core
"""


def _run_self_case(failures, label, sources, expected_counts,
                   declared_edges=frozenset()):
    files = [parse_file("src/fixture/%s_%d.cc" % (label, i), text)
             for i, text in enumerate(sources)]
    index = Index(files)
    findings = []
    check_nondeterministic_iteration(index, findings)
    check_guarded_fields(index, findings)
    check_lock_order(index, findings, set(declared_edges))
    check_signal_safety(index, findings)
    check_span_coverage(index, findings)
    counts = collections.Counter(f.check for f in findings)
    for check, want in expected_counts.items():
        if counts.get(check, 0) != want:
            failures.append(
                "%s: expected %d x %s, got %d (%s)" % (
                    label, want, check, counts.get(check, 0),
                    [(f.line, f.check, f.message[:60]) for f in findings]))
    for check in counts:
        if check not in expected_counts:
            failures.append("%s: unexpected %s findings: %s" % (
                label, check,
                [(f.line, f.message[:80]) for f in findings
                 if f.check == check]))


def self_test():
    failures = []

    # Tokenizer & annotation plumbing.
    tokens = tokenize("int x = 0; // ROCK_ANALYZE(ordered-ok: prose)\n")
    if any(t.text == "ROCK_ANALYZE" for t in tokens):
        failures.append("tokenizer did not strip comments")
    fm = parse_file("src/a.cc",
                    "// ROCK_ANALYZE(ordered-ok: justified here)\n"
                    "int x;\n")
    if not fm.annotation(2, "ordered-ok"):
        failures.append("annotation on preceding line not found")
    if fm.annotation(2, "unguarded-ok"):
        failures.append("annotation tag confusion")

    # Class parsing: fields, annotations, mutexes.
    fm = parse_file("src/b.h", SELF_TEST_GUARDED_BAD)
    if len(fm.classes) != 1 or len(fm.classes[0].fields) != 4:
        failures.append("class parse: got %s" % [
            (c.name, [f.name for f in c.fields]) for c in fm.classes])
    else:
        queue_field = fm.classes[0].field("queue")
        if "ROCK_GUARDED_BY" not in queue_field.annotations:
            failures.append("ROCK_GUARDED_BY annotation not parsed")

    _run_self_case(failures, "guarded_bad", [SELF_TEST_GUARDED_BAD],
                   {"guarded-field": 2})
    _run_self_case(failures, "guarded_good", [SELF_TEST_GUARDED_GOOD], {})
    _run_self_case(failures, "nondet_bad", [SELF_TEST_NONDET_BAD],
                   {"nondeterministic-iteration": 1})
    _run_self_case(failures, "nondet_good", [SELF_TEST_NONDET_GOOD], {})
    _run_self_case(failures, "lock_bad", [SELF_TEST_LOCK_BAD],
                   {"lock-order": 2},
                   declared_edges={("A::mu", "B::mu")})
    _run_self_case(failures, "lock_good", [SELF_TEST_LOCK_GOOD], {},
                   declared_edges={("A::mu", "B::mu")})
    _run_self_case(failures, "signal_bad", [SELF_TEST_SIGNAL_BAD],
                   {"signal-safety": 2})
    _run_self_case(failures, "signal_good", [SELF_TEST_SIGNAL_GOOD], {})
    _run_self_case(failures, "span", [SELF_TEST_SPAN],
                   {"span-coverage": 1})

    # Raw std::mutex is a guarded-field finding outside src/common/.
    fm = parse_file("src/c.cc", "std::mutex raw;\n")
    findings = []
    check_guarded_fields(Index([fm]), findings)
    if not any(f.check == "guarded-field" for f in findings):
        failures.append("raw std::mutex not flagged")
    fm = parse_file("src/common/mutex.h", "#pragma once\nstd::mutex m_;\n")
    findings = []
    check_guarded_fields(Index([fm]), findings)
    if findings:
        failures.append("src/common/ raw mutex wrongly flagged")

    # Baseline round-trip + ratchet diff.
    agg = {("src/a.cc", "lock-order"): 2, ("src/b.cc", "guarded-field"): 1}
    import tempfile
    with tempfile.NamedTemporaryFile("w", suffix=".txt",
                                     delete=False) as tmp:
        tmp_path = tmp.name
    try:
        write_baseline(tmp_path, agg)
        if read_baseline(tmp_path) != agg:
            failures.append("baseline round-trip mismatch")
    finally:
        os.unlink(tmp_path)
    if diff_against_baseline(agg, dict(agg)):
        failures.append("identical baseline reported regressions")
    shrunk = dict(agg)
    shrunk[("src/a.cc", "lock-order")] = 1
    regressions = diff_against_baseline(agg, shrunk)
    if [(r[0], r[1]) for r in regressions] != [("src/a.cc", "lock-order")]:
        failures.append("ratchet diff wrong: %s" % regressions)

    # Lock-order file parsing.
    import tempfile
    with tempfile.NamedTemporaryFile("w", suffix=".txt",
                                     delete=False) as tmp:
        tmp.write("# comment\nFaultState::mu -> WorkerQueue::mu  # drain\n")
        tmp_path = tmp.name
    try:
        edges = load_lock_order(tmp_path)
        if edges != {("FaultState::mu", "WorkerQueue::mu")}:
            failures.append("lock_order parse: %s" % edges)
    finally:
        os.unlink(tmp_path)

    if failures:
        print("rock_analyze.py self-test FAILED:")
        for failure in failures:
            print("  " + failure)
        return 1
    print("rock_analyze.py self-test passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
