#!/usr/bin/env python3
"""Validates the JSON artifacts the bench binaries and telemetry plane emit.

Usage: check_bench_json.py [--require-zero-dropped-spans]
                           [--require-zero-unrecovered-faults]
                           [--require-profile]
                           [--require-serve]
                           FILE [FILE...]
       check_bench_json.py --trace [--require-flow] FILE [FILE...]
       check_bench_json.py --standalone-telemetry FILE [FILE...]

Default mode checks BENCH_*.json files: bench name, schema_version,
non-empty phases, schedules (rows must carry the ScheduleReport fields
plus per-worker busy/wait/idle attribution), results, telemetry with
counters/gauges/histograms/spans (spans must carry p50/p95/p99 latency
and cpu_seconds/alloc_bytes resource attribution) and a wait_breakdown
array, the profile block, the provenance block, and the faults block.
With --require-zero-dropped-spans, a non-zero tracer drop count
is an error (the bench ring must be sized for the run). With
--require-zero-unrecovered-faults, a non-zero faults.unrecovered gauge
is an error: every unit the pool abandoned must have been replayed from
the round checkpoint by the time the bench emitted telemetry. With
--require-profile, the profile block must come from a live sampling run:
enabled, with at least one sample and at least one folded stack naming a
rock:: frame (the profiler-smoke CI job's gate). With --require-serve,
the optional "serve" block (bench_serve's latency/throughput report:
client/phase config, workload-mix counters, p50/p95/p99 latency,
throughput) must be present, internally consistent, and error-free —
the serve-smoke CI job's gate. CI's bench-smoke step runs this over
every emitted file with the zero-drop/zero-unrecovered flags.

--trace checks Chrome trace-event JSON (TRACE_*.json / the server's
/trace.json): a traceEvents array of well-formed M/X/s/f events.
--require-flow additionally demands at least one s→f flow pair whose
endpoints sit on *different* threads — the scheduler→worker causality
link the tentpole exists to expose.

--standalone-telemetry checks a bare /telemetry.json document (the
telemetry object without the surrounding bench envelope).
"""

import json
import sys

REQUIRED_TOP = ["bench", "schema_version", "phases", "schedules",
                "results", "telemetry", "profile", "provenance", "faults"]
REQUIRED_SCHEDULE = ["label", "mode", "workers", "serial_seconds",
                     "makespan_seconds", "wall_seconds", "stolen_units",
                     "speedup", "measured_speedup", "initial_units",
                     "executed_units", "busy_seconds", "wait_seconds",
                     "idle_seconds"]
REQUIRED_TELEMETRY = ["counters", "gauges", "histograms", "spans",
                      "wait_breakdown", "dropped_spans"]
REQUIRED_HISTOGRAM = ["buckets", "count", "sum", "p50", "p95", "p99"]
REQUIRED_SPAN = ["count", "total_seconds", "max_seconds",
                 "p50_seconds", "p95_seconds", "p99_seconds",
                 "cpu_seconds", "alloc_bytes"]
REQUIRED_BREAKDOWN = ["label", "mode", "workers", "wall_seconds",
                      "busy_seconds", "wait_seconds", "idle_seconds"]
REQUIRED_PROFILE_LIVE = ["running", "sample_hz", "samples", "dropped",
                         "duration_seconds", "stacks"]
REQUIRED_PROVENANCE = ["enabled", "nodes", "conflict_candidates",
                       "max_depth", "ml_calls", "premises",
                       "fixes_by_rule", "proof_depth"]
REQUIRED_PREMISES = ["ground_truth", "prior_fix", "raw", "oracle"]
REQUIRED_FAULTS = ["injected", "retries", "backoff_micros", "worker_deaths",
                   "crashes_suppressed", "steals_on_death",
                   "units_reassigned", "checkpoints", "checkpoint_restores",
                   "unrecovered"]
REQUIRED_SERVE = ["clients", "warmup_requests", "measure_requests", "seed",
                  "mix", "measured_requests", "error_responses",
                  "latency_seconds", "throughput_rps",
                  "measure_wall_seconds"]
REQUIRED_SERVE_MIX = ["ingest", "detect", "explain", "ping"]
REQUIRED_SERVE_LATENCY = ["p50", "p95", "p99", "max"]


def fail(path, message):
    print(f"FAIL {path}: {message}")
    return False


def load(path):
    try:
        with open(path, encoding="utf-8") as fh:
            return json.load(fh)
    except OSError as err:
        fail(path, f"unreadable: {err}")
    except json.JSONDecodeError as err:
        fail(path, f"malformed JSON: {err}")
    return None


def check_provenance(path, prov):
    for key in REQUIRED_PROVENANCE:
        if key not in prov:
            return fail(path, f"provenance missing {key!r}")
    if not isinstance(prov["enabled"], bool):
        return fail(path, f"provenance enabled must be bool, "
                          f"got {prov['enabled']!r}")
    for key in REQUIRED_PREMISES:
        if key not in prov["premises"]:
            return fail(path, f"provenance premises missing {key!r}")
    if not isinstance(prov["fixes_by_rule"], dict):
        return fail(path, "provenance fixes_by_rule must be an object")
    depth = prov["proof_depth"]
    # Empty {} is legal when the bench never chased (histogram never
    # registered); otherwise count + cumulative buckets are required.
    if depth:
        for key in ("count", "buckets"):
            if key not in depth:
                return fail(path, f"provenance proof_depth missing {key!r}")
        for bucket in depth["buckets"]:
            if "le" not in bucket or "count" not in bucket:
                return fail(path, f"bad proof_depth bucket {bucket!r}")
    if prov["enabled"]:
        rule_total = sum(prov["fixes_by_rule"].values())
        if prov["nodes"] < rule_total:
            return fail(path, f"provenance nodes={prov['nodes']} < "
                              f"sum(fixes_by_rule)={rule_total}")
    return True


def check_faults(path, faults, require_zero_unrecovered=False):
    for key in REQUIRED_FAULTS:
        if key not in faults:
            return fail(path, f"faults missing {key!r}")
        if not isinstance(faults[key], int):
            return fail(path, f"faults {key}={faults[key]!r} must be an int")
    # Counters can never go negative; the gauge can transiently (a replay
    # without a matching give-up would be a double-subtract bug).
    for key in REQUIRED_FAULTS:
        if faults[key] < 0:
            return fail(path, f"faults {key}={faults[key]} is negative")
    if faults["injected"] < faults["retries"] + faults["worker_deaths"]:
        return fail(path, f"faults injected={faults['injected']} < "
                          f"retries+deaths="
                          f"{faults['retries'] + faults['worker_deaths']}")
    if require_zero_unrecovered and faults["unrecovered"] != 0:
        return fail(path, f"{faults['unrecovered']} unit(s) abandoned by the "
                          f"pool were never replayed from a checkpoint")
    return True


def check_telemetry_block(path, telemetry):
    for key in REQUIRED_TELEMETRY:
        if key not in telemetry:
            return fail(path, f"telemetry missing {key!r}")
    for name, hist in telemetry["histograms"].items():
        for key in REQUIRED_HISTOGRAM:
            if key not in hist:
                return fail(path, f"histogram {name!r} missing {key!r}")
    for name, span in telemetry["spans"].items():
        for key in REQUIRED_SPAN:
            if key not in span:
                return fail(path, f"span {name!r} missing {key!r}")
        if span["p50_seconds"] > span["p99_seconds"]:
            return fail(path, f"span {name!r} p50 > p99 "
                              f"({span['p50_seconds']} > "
                              f"{span['p99_seconds']})")
        if span["cpu_seconds"] < 0 or span["alloc_bytes"] < 0:
            return fail(path, f"span {name!r} has negative resource "
                              f"attribution (cpu={span['cpu_seconds']} "
                              f"alloc={span['alloc_bytes']})")
    if not isinstance(telemetry["wait_breakdown"], list):
        return fail(path, "wait_breakdown must be an array")
    for row in telemetry["wait_breakdown"]:
        for key in REQUIRED_BREAKDOWN:
            if key not in row:
                return fail(path, f"wait_breakdown row missing {key!r}: "
                                  f"{row}")
        workers = row["workers"]
        for key in ("busy_seconds", "wait_seconds", "idle_seconds"):
            col = row[key]
            if not isinstance(col, list) or len(col) != workers:
                return fail(path, f"wait_breakdown {row['label']!r} {key} "
                                  f"must list one entry per worker "
                                  f"({workers}), got {col!r}")
            if any(v < 0 for v in col):
                return fail(path, f"wait_breakdown {row['label']!r} has a "
                                  f"negative {key} entry: {col}")
    return True


def check_profile(path, profile, require_profile=False):
    """The bench's top-level "profile" block (sampling CPU profiler).

    {"enabled": false} is the shape of a -DROCK_OBS_PROFILER=OFF build; the
    key must still exist so a missing block is distinguishable from a
    deliberately compiled-out profiler.
    """
    if not isinstance(profile, dict) or "enabled" not in profile:
        return fail(path, "profile block must be an object with 'enabled'")
    if not isinstance(profile["enabled"], bool):
        return fail(path, f"profile enabled must be bool, "
                          f"got {profile['enabled']!r}")
    if not profile["enabled"]:
        if require_profile:
            return fail(path, "--require-profile: profiler compiled out "
                              "(profile.enabled is false)")
        return True
    for key in REQUIRED_PROFILE_LIVE:
        if key not in profile:
            return fail(path, f"profile missing {key!r}")
    if profile["samples"] < 0 or profile["dropped"] < 0:
        return fail(path, f"profile has negative sample counts: "
                          f"samples={profile['samples']} "
                          f"dropped={profile['dropped']}")
    stacks = profile["stacks"]
    if not isinstance(stacks, list):
        return fail(path, "profile stacks must be an array")
    for entry in stacks:
        if "stack" not in entry or "count" not in entry:
            return fail(path, f"bad profile stack entry {entry!r}")
        if entry["count"] <= 0:
            return fail(path, f"profile stack with non-positive count: "
                              f"{entry!r}")
    if require_profile:
        if profile["samples"] == 0:
            return fail(path, "--require-profile: profiler captured zero "
                              "samples (was --profile passed? did the bench "
                              "run long enough?)")
        if not stacks:
            return fail(path, "--require-profile: no folded stacks "
                              "(symbolization produced nothing)")
        if not any("rock" in entry["stack"] for entry in stacks):
            return fail(path, "--require-profile: no stack names a rock:: "
                              "frame (is the binary linked -rdynamic?)")
    return True


def check_serve(path, serve):
    """bench_serve's "serve" block: closed-loop latency/throughput report.

    Consistency rules: the workload-mix counters must sum to exactly the
    measured request count (clients * measure_requests), the latency
    percentiles must be non-negative and ordered p50 <= p95 <= p99 <= max,
    and a healthy run has zero error responses.
    """
    for key in REQUIRED_SERVE:
        if key not in serve:
            return fail(path, f"serve missing {key!r}")
    for key in ("clients", "warmup_requests", "measure_requests"):
        if not isinstance(serve[key], int) or serve[key] < 0:
            return fail(path, f"serve {key}={serve[key]!r} must be a "
                              f"non-negative int")
    if serve["clients"] == 0 or serve["measure_requests"] == 0:
        return fail(path, "serve ran zero measured requests "
                          f"(clients={serve['clients']} "
                          f"measure_requests={serve['measure_requests']})")
    mix = serve["mix"]
    for key in REQUIRED_SERVE_MIX:
        if key not in mix:
            return fail(path, f"serve mix missing {key!r}")
        if not isinstance(mix[key], int) or mix[key] < 0:
            return fail(path, f"serve mix {key}={mix[key]!r} must be a "
                              f"non-negative int")
    expected = serve["clients"] * serve["measure_requests"]
    mix_total = sum(mix[key] for key in REQUIRED_SERVE_MIX)
    if mix_total != expected:
        return fail(path, f"serve mix sums to {mix_total}, expected "
                          f"clients*measure_requests={expected}")
    if serve["measured_requests"] != expected:
        return fail(path, f"serve measured_requests="
                          f"{serve['measured_requests']}, expected "
                          f"{expected}")
    latency = serve["latency_seconds"]
    for key in REQUIRED_SERVE_LATENCY:
        if key not in latency:
            return fail(path, f"serve latency_seconds missing {key!r}")
        if not isinstance(latency[key], (int, float)) or latency[key] < 0:
            return fail(path, f"serve latency {key}={latency[key]!r} must "
                              f"be a non-negative number")
    ordered = [latency[key] for key in REQUIRED_SERVE_LATENCY]
    if ordered != sorted(ordered):
        return fail(path, f"serve latency percentiles out of order: "
                          f"{ordered}")
    if serve["throughput_rps"] <= 0:
        return fail(path, f"serve throughput_rps="
                          f"{serve['throughput_rps']!r} must be positive")
    if serve["error_responses"] != 0:
        return fail(path, f"serve saw {serve['error_responses']} error "
                          f"response(s)")
    return True


def check(path, require_zero_dropped_spans=False,
          require_zero_unrecovered=False, require_profile=False,
          require_serve=False):
    doc = load(path)
    if doc is None:
        return False

    for key in REQUIRED_TOP:
        if key not in doc:
            return fail(path, f"missing top-level key {key!r}")
    if doc["schema_version"] != 1:
        return fail(path, f"unexpected schema_version {doc['schema_version']}")
    if not isinstance(doc["phases"], dict) or not doc["phases"]:
        return fail(path, "phases must be a non-empty object")
    for phase, seconds in doc["phases"].items():
        if not isinstance(seconds, (int, float)) or seconds < 0:
            return fail(path, f"phase {phase!r} has bad duration {seconds!r}")
    if not isinstance(doc["schedules"], list):
        return fail(path, "schedules must be an array")
    for row in doc["schedules"]:
        for key in REQUIRED_SCHEDULE:
            if key not in row:
                return fail(path, f"schedule row missing {key!r}: {row}")
    telemetry = doc["telemetry"]
    if not check_telemetry_block(path, telemetry):
        return False
    if require_zero_dropped_spans and telemetry["dropped_spans"] != 0:
        return fail(path, f"tracer dropped {telemetry['dropped_spans']} "
                          f"spans (ring too small for this run)")
    if not check_profile(path, doc["profile"], require_profile):
        return False
    if not check_provenance(path, doc["provenance"]):
        return False
    if not check_faults(path, doc["faults"], require_zero_unrecovered):
        return False
    if require_serve and "serve" not in doc:
        return fail(path, "--require-serve: no serve block "
                          "(is this BENCH_serve.json?)")
    if "serve" in doc and not check_serve(path, doc["serve"]):
        return False

    n_counters = len(telemetry["counters"])
    n_spans = len(telemetry["spans"])
    prov = doc["provenance"]
    faults = doc["faults"]
    profile = doc["profile"]
    samples = profile.get("samples", 0) if profile["enabled"] else 0
    serve_note = ""
    if "serve" in doc:
        serve = doc["serve"]
        serve_note = (f" serve_p50_ms="
                      f"{serve['latency_seconds']['p50'] * 1e3:.3f}"
                      f" serve_rps={serve['throughput_rps']:.0f}")
    print(f"OK   {path}: bench={doc['bench']} phases={len(doc['phases'])} "
          f"schedules={len(doc['schedules'])} counters={n_counters} "
          f"spans={n_spans} breakdowns={len(telemetry['wait_breakdown'])} "
          f"profile_samples={samples} prov_nodes={prov['nodes']} "
          f"faults={faults['injected']} unrecovered={faults['unrecovered']}"
          f"{serve_note}")
    return True


def check_standalone_telemetry(path):
    """A bare /telemetry.json document: the telemetry object itself."""
    doc = load(path)
    if doc is None:
        return False
    if not check_telemetry_block(path, doc):
        return False
    print(f"OK   {path}: counters={len(doc['counters'])} "
          f"spans={len(doc['spans'])} dropped={doc['dropped_spans']}")
    return True


def check_trace(path, require_flow=False):
    """Chrome trace-event JSON, as emitted by ExportChromeTrace."""
    doc = load(path)
    if doc is None:
        return False
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        return fail(path, "expected an object with a traceEvents array")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        return fail(path, "traceEvents must be an array")

    counts = {"X": 0, "M": 0, "s": 0, "f": 0}
    flow_sources = {}   # flow id -> tid of the "s" step
    flow_finishes = {}  # flow id -> tid of the "f" step
    for event in events:
        ph = event.get("ph")
        if ph not in counts:
            return fail(path, f"unexpected event phase {ph!r}: {event}")
        counts[ph] += 1
        if ph == "X":
            for key in ("name", "pid", "tid", "ts", "dur"):
                if key not in event:
                    return fail(path, f"X event missing {key!r}: {event}")
            if event["dur"] < 0:
                return fail(path, f"negative duration: {event}")
        elif ph == "M":
            if "name" not in event or "args" not in event:
                return fail(path, f"metadata event missing name/args: "
                                  f"{event}")
        else:  # flow step
            for key in ("id", "tid", "ts"):
                if key not in event:
                    return fail(path, f"{ph} event missing {key!r}: {event}")
            if ph == "f" and event.get("bp") != "e":
                return fail(path, f"f event must bind enclosing (bp=e): "
                                  f"{event}")
            target = flow_sources if ph == "s" else flow_finishes
            target[event["id"]] = event["tid"]

    if flow_sources.keys() != flow_finishes.keys():
        dangling = flow_sources.keys() ^ flow_finishes.keys()
        return fail(path, f"unpaired flow ids: {sorted(dangling)[:5]}")
    cross_thread = [fid for fid, tid in flow_sources.items()
                    if flow_finishes[fid] != tid]
    if require_flow and not cross_thread:
        return fail(path, "no cross-thread flow event (scheduler→worker "
                          "causality missing); pairs="
                          f"{len(flow_sources)}")
    print(f"OK   {path}: events={len(events)} spans={counts['X']} "
          f"metadata={counts['M']} flows={counts['s']} "
          f"cross_thread_flows={len(cross_thread)}")
    return True


def main(argv):
    args = argv[1:]
    require_zero_dropped_spans = False
    require_zero_unrecovered = False
    require_profile = False
    require_serve = False
    trace_mode = False
    require_flow = False
    standalone_telemetry = False
    while args and args[0].startswith("--"):
        if args[0] == "--require-zero-dropped-spans":
            require_zero_dropped_spans = True
        elif args[0] == "--require-zero-unrecovered-faults":
            require_zero_unrecovered = True
        elif args[0] == "--require-profile":
            require_profile = True
        elif args[0] == "--require-serve":
            require_serve = True
        elif args[0] == "--trace":
            trace_mode = True
        elif args[0] == "--require-flow":
            require_flow = True
        elif args[0] == "--standalone-telemetry":
            standalone_telemetry = True
        else:
            print(f"unknown flag {args[0]}")
            return 1
        args = args[1:]
    if not args:
        print(__doc__.strip())
        return 1
    if require_flow and not trace_mode:
        print("--require-flow needs --trace")
        return 1
    if trace_mode:
        ok = all([check_trace(path, require_flow) for path in args])
    elif standalone_telemetry:
        ok = all([check_standalone_telemetry(path) for path in args])
    else:
        ok = all([check(path, require_zero_dropped_spans,
                        require_zero_unrecovered, require_profile,
                        require_serve)
                  for path in args])
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
