#!/usr/bin/env python3
"""Validates the BENCH_*.json files the bench binaries emit.

Usage: check_bench_json.py FILE [FILE...]

Fails (exit 1) when a file is missing, is not valid JSON, or lacks the
required sections: bench name, schema_version, non-empty phases,
schedules (rows must carry the ScheduleReport fields), results, and
telemetry with counters/gauges/histograms/spans. CI's bench-smoke step
runs this over every emitted file.
"""

import json
import sys

REQUIRED_TOP = ["bench", "schema_version", "phases", "schedules",
                "results", "telemetry"]
REQUIRED_SCHEDULE = ["label", "mode", "workers", "serial_seconds",
                     "makespan_seconds", "wall_seconds", "stolen_units",
                     "speedup", "measured_speedup", "initial_units",
                     "executed_units"]
REQUIRED_TELEMETRY = ["counters", "gauges", "histograms", "spans",
                      "dropped_spans"]


def fail(path, message):
    print(f"FAIL {path}: {message}")
    return False


def check(path):
    try:
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
    except OSError as err:
        return fail(path, f"unreadable: {err}")
    except json.JSONDecodeError as err:
        return fail(path, f"malformed JSON: {err}")

    for key in REQUIRED_TOP:
        if key not in doc:
            return fail(path, f"missing top-level key {key!r}")
    if doc["schema_version"] != 1:
        return fail(path, f"unexpected schema_version {doc['schema_version']}")
    if not isinstance(doc["phases"], dict) or not doc["phases"]:
        return fail(path, "phases must be a non-empty object")
    for phase, seconds in doc["phases"].items():
        if not isinstance(seconds, (int, float)) or seconds < 0:
            return fail(path, f"phase {phase!r} has bad duration {seconds!r}")
    if not isinstance(doc["schedules"], list):
        return fail(path, "schedules must be an array")
    for row in doc["schedules"]:
        for key in REQUIRED_SCHEDULE:
            if key not in row:
                return fail(path, f"schedule row missing {key!r}: {row}")
    telemetry = doc["telemetry"]
    for key in REQUIRED_TELEMETRY:
        if key not in telemetry:
            return fail(path, f"telemetry missing {key!r}")
    for name, hist in telemetry["histograms"].items():
        for key in ("buckets", "count", "sum"):
            if key not in hist:
                return fail(path, f"histogram {name!r} missing {key!r}")
    for name, span in telemetry["spans"].items():
        for key in ("count", "total_seconds", "max_seconds"):
            if key not in span:
                return fail(path, f"span {name!r} missing {key!r}")

    n_counters = len(telemetry["counters"])
    n_spans = len(telemetry["spans"])
    print(f"OK   {path}: bench={doc['bench']} phases={len(doc['phases'])} "
          f"schedules={len(doc['schedules'])} counters={n_counters} "
          f"spans={n_spans}")
    return True


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip())
        return 1
    ok = all([check(path) for path in argv[1:]])
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
