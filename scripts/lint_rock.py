#!/usr/bin/env python3
"""Rock-specific lint pass.

Enforces repo conventions that neither the compiler nor clang-tidy check:

  using-namespace    no `using namespace` at any scope in headers.
  pragma-once        every header starts its include protection with
                     `#pragma once`.
  raw-stdio          no std::cout / std::cerr / printf-family output outside
                     bench/ and examples/ — library code logs via ROCK_LOG.
  nondeterminism     no rand() / std::random_device under src/ — the chase
                     and discovery must be bit-reproducible, so randomness
                     goes through the seeded rock::common::Rng.
  raw-socket         no socket()/bind()/listen()/accept()/connect() calls
                     outside the two audited networking seams: src/obs/
                     server.cc (TelemetryServer) and src/serve/ (rockd and
                     its client/load-generator stack).
  unregistered-test  every tests/*.cc is picked up by tests/CMakeLists.txt
                     (the glob takes *_test.cc; anything else must be named
                     there explicitly or it silently never runs).

The former raw-mutex and raw-signal rules moved to the semantic analyzer
(scripts/rock_analyze.py), which owns all concurrency/signal invariants:
raw std:: locks are guarded-field findings, and signal/timer seam
confinement plus the SigprofHandler call-graph walk are signal-safety
findings. Each invariant has exactly one owner.

A line may opt out with a justification marker:
    ... // rock-lint: allow(<rule>)

Usage:
    scripts/lint_rock.py [--root DIR]    # lint the repo, exit 1 on findings
    scripts/lint_rock.py --self-test     # run the built-in fixture suite
"""

import argparse
import os
import re
import subprocess
import sys

# Directories whose sources are linted (relative to the repo root).
LINT_PREFIXES = ("src/", "tests/", "bench/", "examples/")

ALLOW_RE = re.compile(r"rock-lint:\s*allow\(([a-z-]+)\)")

USING_NAMESPACE_RE = re.compile(r"\busing\s+namespace\b")
# Lookbehind keeps attribute spellings like format(printf, 1, 2) and the
# wider printf family (snprintf, fprintf) from tripping the output rule;
# std::printf still matches because ':' is not in the class.
RAW_STDIO_RE = re.compile(
    r"std::cout\b|std::cerr\b|(?<![A-Za-z_])printf\s*\(|std::puts\b")
NONDETERMINISM_RE = re.compile(
    r"(?<![A-Za-z_:])rand\s*\(\s*\)|std::random_device\b")
# Bare POSIX calls, optionally `::`-qualified. The lookbehind keeps member
# calls (ring.accept(...)), qualified names (std::bind), and identifiers
# merely ending in a call name (MySocket(...)) from matching.
RAW_SOCKET_RE = re.compile(
    r"(?<![A-Za-z0-9_:.>])(?:::\s*)?"
    r"(?:socket|bind|listen|accept|accept4|connect)\s*\(")


def strip_comments_and_strings(text):
    """Blanks out comments and string/char literals, preserving line
    structure, so token rules don't fire on prose or log messages."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            i = n if j < 0 else j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            end = n if j < 0 else j + 2
            out.append("".join(ch if ch == "\n" else " "
                               for ch in text[i:end]))
            i = end
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            out.append(quote + " " * (min(j, n - 1) - i - 1) + quote)
            i = min(j + 1, n)
        else:
            out.append(c)
            i += 1
    return "".join(out)


def allowed_rules(line):
    return set(ALLOW_RE.findall(line))


def lint_file(path, text):
    """Lints one file; `path` is repo-relative with forward slashes.
    Returns a list of (path, line_number, rule, message)."""
    findings = []
    raw_lines = text.split("\n")
    code_lines = strip_comments_and_strings(text).split("\n")
    is_header = path.endswith(".h")

    def check(rule, regex, message, *, headers_only=False, skip=False):
        if skip or (headers_only and not is_header):
            return
        for lineno, code in enumerate(code_lines, start=1):
            if regex.search(code) and rule not in allowed_rules(
                    raw_lines[lineno - 1]):
                findings.append((path, lineno, rule, message))

    check("using-namespace", USING_NAMESPACE_RE,
          "`using namespace` in a header leaks into every includer",
          headers_only=True)
    check("raw-stdio", RAW_STDIO_RE,
          "library code logs via ROCK_LOG, not stdout/stderr",
          skip=path.startswith(("bench/", "examples/")))
    check("nondeterminism", NONDETERMINISM_RE,
          "use the seeded rock::common::Rng; rand()/random_device break "
          "reproducibility",
          skip=not path.startswith("src/"))
    check("raw-socket", RAW_SOCKET_RE,
          "networking goes through obs::TelemetryServer / HttpFetch or the "
          "src/serve/ stack; src/obs/server.cc and src/serve/ are the "
          "audited socket seams",
          skip=path == "src/obs/server.cc" or path.startswith("src/serve/"))

    if is_header and "#pragma once" not in text:
        findings.append((path, 1, "pragma-once",
                         "headers use `#pragma once`"))
    return findings


def lint_test_registration(files, cmake_text):
    """Every top-level tests/*.cc must be globbed (*_test.cc) or named in
    tests/CMakeLists.txt."""
    findings = []
    for path in files:
        directory, name = os.path.split(path)
        if directory != "tests" or not name.endswith(".cc"):
            continue
        if name.endswith("_test.cc") or name in cmake_text:
            continue
        findings.append((path, 1, "unregistered-test",
                         "not matched by the *_test.cc glob and not named "
                         "in tests/CMakeLists.txt — it will never run"))
    return findings


def lint_tree(root):
    files = subprocess.run(
        ["git", "ls-files", "*.h", "*.cc"],
        capture_output=True, text=True, check=True, cwd=root,
    ).stdout.split()
    files = [f for f in files if f.startswith(LINT_PREFIXES)]
    findings = []
    for path in files:
        with open(os.path.join(root, path), encoding="utf-8") as fp:
            findings.extend(lint_file(path, fp.read()))
    cmake_path = os.path.join(root, "tests", "CMakeLists.txt")
    cmake_text = ""
    if os.path.exists(cmake_path):
        with open(cmake_path, encoding="utf-8") as fp:
            cmake_text = fp.read()
    findings.extend(lint_test_registration(files, cmake_text))
    return findings


# --------------------------- self test -----------------------------------

SELF_TEST_CASES = [
    # (path, content, expected rule or None)
    ("src/par/widget.cc", "common::Mutex mu_;\n", None),
    # raw std:: locks are rock_analyze.py's guarded-field check now.
    ("src/par/widget.cc", "std::mutex mu_;\n", None),
    ("src/rules/eval.h",
     "#pragma once\nusing namespace std;\n", "using-namespace"),
    ("src/rules/eval.cc", "using namespace std;\n", None),  # .cc is fine
    ("src/rules/eval.h", "#ifndef X\n#define X\n#endif\n", "pragma-once"),
    ("src/rules/eval.h", "#pragma once\n", None),
    ("src/core/engine.cc", 'std::cout << "hi";\n', "raw-stdio"),
    ("src/core/engine.cc", "std::printf(\"x\");\n", "raw-stdio"),
    ("src/common/strings.h",
     "#pragma once\n__attribute__((format(printf, 1, 2)))\n", None),
    ("src/common/strings.cc", "vsnprintf(buf, n, fmt, ap);\n", None),
    ("bench/bench_x.cc", 'std::cout << "bench output";\n', None),
    ("src/chase/chase.cc", "int r = rand();\n", "nondeterminism"),
    ("src/discovery/sample.cc", "std::random_device rd;\n",
     "nondeterminism"),
    ("src/common/rng.cc", "uint64_t s = seed;\n", None),
    ("src/core/engine.cc", "int fd = ::socket(AF_INET, 0, 0);\n",
     "raw-socket"),
    ("src/core/engine.cc", "bind(fd, addr, len);\n", "raw-socket"),
    ("tests/obs_server_test.cc", "listen(fd, 4);\n", "raw-socket"),
    ("src/obs/server.cc", "int fd = ::socket(AF_INET, 0, 0);\n", None),
    ("src/serve/server.cc", "int fd = ::socket(AF_INET, 0, 0);\n", None),
    ("src/serve/client.cc", "connect(fd, addr, len);\n", None),
    ("src/serve/loadgen.cc", "::accept(fd, nullptr, nullptr);\n", None),
    ("src/par/executor.cc", "auto f = std::bind(&X::Run, this);\n", None),
    ("src/par/executor.cc", "ring.accept(unit);\n", None),
    ("src/par/executor.cc", "queue->accept(unit);\n", None),
    # Signal/timer seam confinement is rock_analyze.py's signal-safety
    # check now.
    ("src/core/engine.cc", "sigaction(SIGPROF, &sa, nullptr);\n", None),
    ("tests/helper_test.cc", "ok\n", None),
]


def self_test():
    failures = []
    for path, content, expected in SELF_TEST_CASES:
        findings = lint_file(path, content)
        rules = {f[2] for f in findings}
        if expected is None and rules:
            failures.append(f"{path!r}: expected clean, got {sorted(rules)}")
        elif expected is not None and expected not in rules:
            failures.append(
                f"{path!r}: expected {expected!r}, got {sorted(rules)}")

    # Registration rule: helper.cc unregistered, helper2.cc named in cmake,
    # real_test.cc globbed.
    reg = lint_test_registration(
        ["tests/helper.cc", "tests/helper2.cc", "tests/real_test.cc",
         "tests/thread_safety_compile/bad.cc"],
        "add_executable(helper2 helper2.cc)\n")
    reg_paths = {f[0] for f in reg}
    if reg_paths != {"tests/helper.cc"}:
        failures.append(f"registration rule found {sorted(reg_paths)}, "
                        "expected only tests/helper.cc")

    if failures:
        print("lint_rock.py self-test FAILED:")
        for failure in failures:
            print("  " + failure)
        return 1
    print(f"lint_rock.py self-test passed "
          f"({len(SELF_TEST_CASES)} fixtures + registration rule)")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=None,
                        help="repo root (default: this script's parent)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the built-in fixture suite and exit")
    args = parser.parse_args()

    if args.self_test:
        return self_test()

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    findings = lint_tree(root)
    for path, lineno, rule, message in sorted(findings):
        print(f"{path}:{lineno}: [{rule}] {message}")
    if findings:
        print(f"\n{len(findings)} lint finding(s).", file=sys.stderr)
        return 1
    print("lint_rock.py: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
